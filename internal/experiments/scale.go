package experiments

import (
	"fmt"

	"coarse/internal/core"
	"coarse/internal/metrics"
	"coarse/internal/model"
	"coarse/internal/paramserver"
	"coarse/internal/runner"
	"coarse/internal/topology"
	"coarse/internal/train"
)

// The scale family takes the paper's single-node designs to synthetic
// multi-rack machines (topology.ScaleSpec) and measures how each
// synchronization design's iteration time inflates as the worker count
// grows 8 -> 1024 (8 -> 4096 in the full, non-quick sweep). The paper's Section VI claim, extrapolated: COARSE's
// decentralized pull-based synchronization — gradients fan out across
// k sharded coherence domains, each domain spreading load over its
// pooled devices — degrades more slowly than DENSE's shared write
// ports or a central parameter server's incast + serial-apply
// bottleneck. Weak scaling holds per-worker batch constant; strong
// scaling holds the global batch constant; the shard sweep varies the
// COARSE/DENSE/CentralPS partition count at fixed machine size.

// scaleStrategies in presentation order: centralized baselines first,
// COARSE last.
var scaleStrategies = []string{"DENSE", "CentralPS", "COARSE"}

// scaleWeakWorkers is the weak-scaling worker sweep; the first entry
// is the inflation baseline. Quick mode stops at 1024 — the 4096-cell
// COARSE run alone costs tens of minutes of single-core wall clock
// (measured ~40 min; its fabric carries ~256 racks of flows through
// every reshare), which no CI lane can absorb — so the full sweep
// (plain `coarsebench`, or TestScaleOrdering4096) extends it with
// scaleWeakWorkersFull.
var scaleWeakWorkers = []int{8, 32, 128, 512, 1024}

// scaleWeakWorkersFull is the non-quick extension of the weak sweep.
var scaleWeakWorkersFull = []int{4096}

// scaleStrongWorkers is the strong-scaling sweep (global batch fixed
// at scaleStrongBatch, so per-worker batch shrinks with the machine).
var scaleStrongWorkers = []int{8, 32, 128}

// scaleShardCounts is the partition sweep at scaleShardWorkers.
var scaleShardCounts = []int{1, 2, 4}

const (
	// scaleMemDevs is the floor of the pooled CCI device count; the
	// pool grows with the machine (two devices per rack — the pool is
	// rack-attached disaggregated memory, so it scales with the fabric
	// like the paper's Section VI projection). With scaleShards
	// partitions each COARSE coherence domain spans devs/scaleShards
	// devices, so the proxy spreader splits each shard's incast across
	// its whole domain while CentralPS keeps k fixed server CPUs.
	scaleMemDevs = 8
	scaleShards  = 4
	// scaleOversub is the ToR:spine oversubscription ratio — the
	// generated machines are deliberately not full-bisection.
	scaleOversub     = 2
	scaleWeakBatch   = 4   // per-worker samples, weak scaling
	scaleStrongBatch = 512 // global samples, strong scaling
	// scaleShardWorkers is the fixed machine size of the shard sweep.
	scaleShardWorkers = 128
)

// scaleMachine generates the w-worker synthetic machine: 4 GPUs per
// node, up to 4 nodes per rack, rack count growing with the sweep, and
// the shared scaleMemDevs-device CCI pool attached at the rack tier.
func scaleMachine(workers int) topology.Spec {
	gpn := 4
	if workers < gpn {
		gpn = workers
	}
	nodes := workers / gpn
	npr := 4
	if nodes < npr {
		npr = nodes
	}
	racks := nodes / npr
	devs := 2 * racks
	if devs < scaleMemDevs {
		devs = scaleMemDevs
	}
	return topology.ScaleSpec{
		Racks:        racks,
		NodesPerRack: npr,
		GPUsPerNode:  gpn,
		MemDevs:      devs,
		MemDevTier:   topology.TierRack,
		Oversub:      scaleOversub,
	}.Generate()
}

// scaleModel is the synthetic workload: eight uniform 2 MiB dense
// layers (16 MiB of parameters — enough traffic that synchronization
// dominates once hundreds of workers share the fabric) with explicit
// per-sample FLOPs so compute time is roofline-derived, not
// layer-shape-derived.
func scaleModel() *model.Model {
	m := &model.Model{Name: "synth16M"}
	for i := 0; i < 8; i++ {
		m.Layers = append(m.Layers, model.Layer{
			Name:       fmt.Sprintf("dense%d", i),
			ParamElems: 512 * 1024, // 2 MiB
			FwdFLOPs:   2.0e9,
			ActBytes:   1 << 20,
		})
	}
	return m
}

// scaleStrategy builds a k-sharded instance of a named design. COARSE
// runs its full parameter space through the memory devices
// (MFraction 1): at rack scale the per-layer tail rides the same
// shard domains as the bulk instead of a 512-wide GPU ring.
func scaleStrategy(name string, shards int) train.Strategy {
	switch name {
	case "COARSE":
		o := core.DefaultOptions()
		o.Shards = shards
		o.MFraction = 1
		return core.New(o)
	case "DENSE":
		d := paramserver.NewDENSE()
		d.Shards = shards
		return d
	case "CentralPS":
		p := paramserver.NewCentralPS()
		p.Shards = shards
		return p
	}
	panic(fmt.Sprintf("experiments: unknown scale strategy %q", name))
}

// scaleSpec builds a cacheable runner spec for one scale cell. The key
// carries every identifying knob (worker count fixes the generated
// machine; shard count fixes the strategy partitioning), so the weak
// sweep, strong sweep and shard sweep share cells where they overlap.
func scaleSpec(cfg Config, workers, shards, batch int, strategy string) runner.Spec {
	iters := cfg.iterations()
	id := fmt.Sprintf("scale/w%d/k%d/%s/b%d/i%d", workers, shards, strategy, batch, iters)
	return runner.Spec{
		ID:          id,
		Key:         id,
		Topology:    scaleMachine(workers),
		Model:       scaleModel(),
		Batch:       batch,
		Iterations:  iters,
		NewStrategy: func() train.Strategy { return scaleStrategy(strategy, shards) },
	}
}

// scaleCell identifies one swept configuration and the run it maps to.
type scaleCell struct {
	Workers  int
	Shards   int
	Batch    int
	Strategy string
	ID       string
}

// scaleData is every cell of the family, run as one batch.
type scaleData struct {
	weak    []scaleCell
	strong  []scaleCell
	shard   []scaleCell
	got     map[string]*runner.Result
	records []metrics.Result
}

// result returns the cell's run, or nil when it failed.
func (d *scaleData) result(c scaleCell) *runner.Result {
	r := d.got[c.ID]
	if r == nil || !r.OK() {
		return nil
	}
	return r
}

// baseline returns the same strategy/shards/batch cell at the smallest
// worker count of the given sweep.
func (d *scaleData) baseline(cells []scaleCell, c scaleCell) *runner.Result {
	for _, b := range cells {
		if b.Strategy == c.Strategy && b.Shards == c.Shards && b.Workers == cells[0].Workers {
			return d.result(b)
		}
	}
	return nil
}

// Inflation is the weak-scaling figure of merit: iteration time at w
// workers over the same design's iteration time on the smallest
// machine. Perfect weak scaling is 1.0.
func scaleInflation(base, r *runner.Result) float64 {
	return r.Train.IterTime.ToSeconds() / base.Train.IterTime.ToSeconds()
}

func scaleRun(cfg Config) *scaleData {
	rs := &runSet{}
	d := &scaleData{}
	add := func(workers, shards, batch int, strategy string) scaleCell {
		s := scaleSpec(cfg, workers, shards, batch, strategy)
		return scaleCell{Workers: workers, Shards: shards, Batch: batch, Strategy: strategy, ID: rs.add(s)}
	}
	weak := scaleWeakWorkers
	if !cfg.Quick {
		weak = append(append([]int{}, weak...), scaleWeakWorkersFull...)
	}
	for _, w := range weak {
		for _, strat := range scaleStrategies {
			d.weak = append(d.weak, add(w, scaleShards, scaleWeakBatch, strat))
		}
	}
	for _, w := range scaleStrongWorkers {
		for _, strat := range scaleStrategies {
			d.strong = append(d.strong, add(w, scaleShards, scaleStrongBatch/w, strat))
		}
	}
	for _, k := range scaleShardCounts {
		for _, strat := range scaleStrategies {
			d.shard = append(d.shard, add(scaleShardWorkers, k, scaleWeakBatch, strat))
		}
	}
	d.got, d.records = rs.results(cfg)
	return d
}

// tierUtil pulls one tier's mean utilization out of a run (0 when the
// machine has no such tier).
func tierUtil(r *runner.Result, tier string) float64 {
	for _, tu := range r.Train.TierUtils {
		if tu.Tier == tier {
			return tu.Util
		}
	}
	return 0
}

// renderScaleWeak renders the weak-scaling table with the per-tier
// saturation columns that explain the inflation: the rack/spine
// network tiers and the CCI tier are where the designs part ways.
func renderScaleWeak(d *scaleData) *metrics.Table {
	tab := metrics.NewTable(
		fmt.Sprintf("Weak scaling: batch %d/worker, rack-scaled CCI pool (>= %d devices), %d shards, %gx oversubscribed",
			scaleWeakBatch, scaleMemDevs, scaleShards, float64(scaleOversub)),
		"workers", "strategy", "iter time", "inflation", "gpu util", "rack util", "spine util", "cci util")
	for _, c := range d.weak {
		r := d.result(c)
		if r == nil {
			continue
		}
		base := d.baseline(d.weak, c)
		infl := "-"
		if base != nil {
			infl = metrics.Speedup(scaleInflation(base, r))
		}
		tab.AddRow(c.Workers, c.Strategy,
			metrics.Ms(r.Train.IterTime), infl,
			metrics.Pct(r.Train.GPUUtil),
			metrics.Pct(tierUtil(r, "rack")),
			metrics.Pct(tierUtil(r, "spine")),
			metrics.Pct(tierUtil(r, "cci")))
	}
	return tab
}

// renderScaleStrong renders the strong-scaling table: fixed global
// batch, speedup vs the smallest machine, parallel efficiency.
func renderScaleStrong(d *scaleData) *metrics.Table {
	tab := metrics.NewTable(
		fmt.Sprintf("Strong scaling: global batch %d", scaleStrongBatch),
		"workers", "strategy", "batch/worker", "iter time", "speedup", "efficiency")
	for _, c := range d.strong {
		r := d.result(c)
		if r == nil {
			continue
		}
		base := d.baseline(d.strong, c)
		speed, eff := "-", "-"
		if base != nil {
			s := base.Train.IterTime.ToSeconds() / r.Train.IterTime.ToSeconds()
			ideal := float64(c.Workers) / float64(d.strong[0].Workers)
			speed = metrics.Speedup(s)
			eff = metrics.Pct(s / ideal)
		}
		tab.AddRow(c.Workers, c.Strategy, c.Batch,
			metrics.Ms(r.Train.IterTime), speed, eff)
	}
	return tab
}

// renderScaleShards renders the partition sweep at the fixed machine
// size.
func renderScaleShards(d *scaleData) *metrics.Table {
	tab := metrics.NewTable(
		fmt.Sprintf("Shard sweep at %d workers: partitions vs iteration time (batch %d/worker)",
			scaleShardWorkers, scaleWeakBatch),
		"shards", "strategy", "iter time", "cci util", "spine util")
	for _, c := range d.shard {
		r := d.result(c)
		if r == nil {
			continue
		}
		tab.AddRow(c.Shards, c.Strategy,
			metrics.Ms(r.Train.IterTime),
			metrics.Pct(tierUtil(r, "cci")),
			metrics.Pct(tierUtil(r, "spine")))
	}
	return tab
}

// Scale is the scale-out experiment family: weak and strong scaling of
// every synchronization design on generated multi-rack machines, plus
// the shard-count sweep.
func Scale() Experiment {
	return Experiment{
		ID:    "scale",
		Title: "Scale-out: weak/strong scaling on synthetic multi-rack machines",
		Paper: "Section VI extrapolated: COARSE's sharded decentralized synchronization inflates strictly less than DENSE's shared ports and a central PS's incast once workers reach rack scale (>= 128)",
		Run: func(cfg Config) *Report {
			d := scaleRun(cfg)
			rep := &Report{Records: d.records}
			rep.add(renderScaleWeak(d), renderScaleStrong(d), renderScaleShards(d))
			return rep
		},
	}
}
