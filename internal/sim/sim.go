// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as int64 nanoseconds and dispatches events
// in (time, sequence) order, so two events scheduled for the same instant
// fire in the order they were scheduled. Nothing in the engine consults the
// wall clock or any other source of nondeterminism: running the same event
// program twice yields the same trace, which the experiment harness relies
// on to make figures reproducible.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is a distinct type so call sites cannot confuse virtual
// timestamps with durations or wall-clock values.
type Time int64

// Infinity is a time later than any event the engine will ever dispatch.
const Infinity Time = math.MaxInt64

// Duration converts a standard library duration to virtual nanoseconds.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds converts a floating point number of seconds into virtual time,
// rounding to the nearest nanosecond.
func Seconds(s float64) Time { return Time(math.Round(s * 1e9)) }

// ToSeconds converts a virtual time or duration to floating point seconds.
func (t Time) ToSeconds() float64 { return float64(t) / 1e9 }

// String formats the time as a duration for human-readable traces.
func (t Time) String() string {
	if t == Infinity {
		return "inf"
	}
	return time.Duration(t).String()
}

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Engine.Schedule and friends.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int   // position within the queue's backing store, -1 once removed
	slot   int32 // timing-wheel bucket code; unused by the heap queue
	part   int32 // partition tag: 0 = hub queue, p >= 1 = rack queue p-1
	cancel bool
	daemon bool
}

// before reports strict (time, seq) order — the engine's total dispatch
// order.
func (e *Event) before(o *Event) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// Daemon reports whether the event was scheduled as a daemon event.
func (e *Event) Daemon() bool { return e.daemon }

// Cancelled reports whether Cancel was called on the event before it fired.
func (e *Event) Cancelled() bool { return e.cancel }

// Time returns the virtual instant the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.at }

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// the whole simulation runs single-threaded for determinism.
type Engine struct {
	now        Time
	seq        uint64
	queue      EventQueue
	kind       QueueKind
	dispatched uint64
	daemons    uint64 // daemon events fired (excluded from Dispatched)
	foreground int    // pending non-daemon events
	running    bool

	// Lazy cancellation: Cancel marks an event as a tombstone and
	// leaves it in the heap (skip-on-pop) instead of paying an
	// O(log n) heap.Remove. tombstones counts the markers still
	// queued; when they outnumber live events the queue is compacted.
	tombstones  int
	tombstoned  uint64 // cumulative tombstoned cancels (telemetry)
	compactions uint64 // cumulative queue compactions (telemetry)

	// instantEnd holds end-of-instant hooks: callbacks that run after
	// every queued event at the current virtual instant has fired,
	// before the clock advances (or the run loop returns). The fabric
	// uses this to coalesce same-instant reshare triggers into one
	// reallocation pass.
	instantEnd []func()

	// pool recycles Event allocations for owners that can prove
	// exclusive ownership (see Recycle).
	pool []*Event

	// Partitioned execution (see partition.go): per-rack sub-queues
	// beside the hub queue, the conservative lookahead window width,
	// the drain-goroutine budget, and the per-rack drain contexts that
	// are live only while a parallel window is in flight.
	racks     []EventQueue
	drains    []*drainCtx
	lookahead Time
	parallel  int
	pwindows  uint64 // parallel windows executed
	pdrained  uint64 // events drained inside parallel windows
}

// maxEventPool bounds the engine's event free-list.
const maxEventPool = 4096

// compactMinTombstones is the floor below which compaction is never
// triggered; small queues just dispatch through their tombstones.
const compactMinTombstones = 64

// NewEngine returns an engine with virtual time zero and an empty
// queue of the default kind (see DefaultQueueKind).
func NewEngine() *Engine {
	return NewEngineQueue(DefaultQueueKind())
}

// NewEngineQueue returns an engine using the given event-queue
// implementation. Every implementation dispatches identically; the
// choice only affects performance.
func NewEngineQueue(kind QueueKind) *Engine {
	if kind != QueueWheel {
		kind = QueueHeap
	}
	return &Engine{queue: newQueue(kind), kind: kind}
}

// QueueKindUsed reports which event-queue implementation the engine
// was built with.
func (e *Engine) QueueKindUsed() QueueKind { return e.kind }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events waiting to fire, daemons
// included. Tombstoned (cancelled but not yet compacted) events are
// excluded: they occupy queue slots but will never fire.
func (e *Engine) Pending() int { return e.queuedLen() - e.tombstones }

// queuedLen is the total queued-event count across the hub queue and
// every rack sub-queue, tombstones included.
func (e *Engine) queuedLen() int {
	n := e.queue.Len()
	for _, q := range e.racks {
		n += q.Len()
	}
	return n
}

// qof returns the queue an event belongs to: the hub queue for
// untagged events, the owning rack sub-queue otherwise.
func (e *Engine) qof(ev *Event) EventQueue {
	if ev.part == 0 {
		return e.queue
	}
	return e.racks[ev.part-1]
}

// EventsTombstoned returns the cumulative number of cancels that were
// recorded as lazy tombstones (every Cancel of a still-queued event).
func (e *Engine) EventsTombstoned() uint64 { return e.tombstoned }

// Compactions returns how many times the event queue was rebuilt to
// shed tombstones.
func (e *Engine) Compactions() uint64 { return e.compactions }

// PendingForeground returns the number of non-daemon events waiting to
// fire; the engine is idle for simulation purposes when it is zero.
func (e *Engine) PendingForeground() int { return e.foreground }

// Dispatched returns the total number of non-daemon events fired so
// far. Daemon events (telemetry sampler ticks) are excluded, so the
// count stays a pure fingerprint of the simulated workload: enabling
// observability does not change it.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// DaemonsFired returns the number of daemon events fired so far.
func (e *Engine) DaemonsFired() uint64 { return e.daemons }

// Schedule registers fn to run after delay. A negative delay panics:
// scheduling into the past would silently reorder causality.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule with negative delay %d", delay))
	}
	return e.At(e.now+delay, fn)
}

// At registers fn to run at absolute virtual time t, which must not be in
// the past.
func (e *Engine) At(t Time, fn func()) *Event {
	ev := e.at(t, fn)
	ev.daemon = false
	e.foreground++
	return ev
}

// ScheduleDaemon registers fn to run after delay as a daemon event.
// Daemon events fire in timestamp order like any other event, but they
// do not keep Run alive: once only daemon events remain queued, Run
// returns without firing them, and they are excluded from Dispatched.
// Observability machinery (the telemetry sampler) uses daemon events so
// that enabling it perturbs neither the simulation's end time nor its
// event-count fingerprint.
func (e *Engine) ScheduleDaemon(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule with negative delay %d", delay))
	}
	return e.AtDaemon(e.now+delay, fn)
}

// AtDaemon registers fn as a daemon event at absolute virtual time t.
// See ScheduleDaemon for daemon-event semantics.
func (e *Engine) AtDaemon(t Time, fn func()) *Event {
	ev := e.at(t, fn)
	ev.daemon = true
	return ev
}

func (e *Engine) at(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	e.seq++
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		*ev = Event{at: t, seq: e.seq, fn: fn}
	} else {
		ev = &Event{at: t, seq: e.seq, fn: fn}
	}
	e.queue.Push(ev)
	return ev
}

// atPart is at() for a tagged partition: the event lands in the rack's
// sub-queue instead of the hub queue. Always a foreground event.
func (e *Engine) atPart(part int32, t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	e.seq++
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		*ev = Event{at: t, seq: e.seq, fn: fn, part: part}
	} else {
		ev = &Event{at: t, seq: e.seq, fn: fn, part: part}
	}
	e.qof(ev).Push(ev)
	e.foreground++
	return ev
}

// Recycle returns a fired (or fully cancelled-and-compacted) event to
// the engine's allocation pool so the next Schedule can reuse it.
// The caller must be the event's sole remaining owner: after Recycle
// the object may be rearmed as an unrelated event at any moment, so
// keeping (or later Cancelling) the pointer corrupts the queue. It is
// legal to call Recycle from inside the event's own callback — by
// then the event has left the queue. Recycling a still-queued event
// panics. Recycle(nil) is a no-op.
func (e *Engine) Recycle(ev *Event) {
	if ev == nil {
		return
	}
	if ev.index >= 0 {
		panic("sim: Recycle of a still-queued event")
	}
	if len(e.pool) < maxEventPool {
		e.pool = append(e.pool, ev)
	}
}

// Cancel marks a pending event so it never fires. Cancelling an event
// that already fired (or was already cancelled) is a no-op.
//
// Cancellation is lazy: the event stays queued as a tombstone that is
// skipped when popped, so Cancel is O(1) instead of an O(log n)
// heap.Remove. When tombstones outnumber live events the queue is
// compacted in one pass, keeping memory bounded by the live event
// population.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	e.tombstones++
	e.tombstoned++
	if !ev.daemon {
		e.foreground--
	}
	e.maybeCompact()
}

// maybeCompact rebuilds the queue without tombstones once they
// outnumber live events (and exceed a small floor). Queue order is
// re-established from (time, seq), so compaction is invisible to
// dispatch order.
func (e *Engine) maybeCompact() {
	if e.tombstones < compactMinTombstones || e.tombstones*2 <= e.queuedLen() {
		return
	}
	removed := e.queue.Compact()
	for _, q := range e.racks {
		removed += q.Compact()
	}
	e.tombstones -= removed
	e.compactions++
}

// Reschedule moves a pending event to a new absolute time, preserving
// its callback. The event keeps its identity but is sequenced as if
// newly scheduled (same-instant tie-break order follows the
// reschedule, not the original schedule). If the event already fired
// or was cancelled it is re-armed.
func (e *Engine) Reschedule(ev *Event, t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", t, e.now))
	}
	e.seq++
	if ev.index >= 0 {
		// Still queued (possibly as a tombstone): fix it up in place —
		// no allocation, one O(log n) sift instead of remove+push.
		if ev.cancel {
			ev.cancel = false
			e.tombstones--
			if !ev.daemon {
				e.foreground++
			}
		}
		ev.at = t
		ev.seq = e.seq
		e.qof(ev).Fix(ev)
		return
	}
	// Fired or compacted away: re-arm from scratch.
	ev.cancel = false
	ev.at = t
	ev.seq = e.seq
	e.qof(ev).Push(ev)
	if !ev.daemon {
		e.foreground++
	}
}

// Retime moves a pending event to a new absolute time while keeping
// its sequence number, so its same-instant tie-break rank against
// other events is whatever the most recent Schedule/Reschedule gave
// it. This is the deferred-deadline primitive: a caller that has
// already fixed an event's dispatch rank (via Reschedule) can settle
// its final time later without perturbing tie order. The event must
// be pending and live; retiming a fired or cancelled event panics.
func (e *Engine) Retime(ev *Event, t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: retime at %v before now %v", t, e.now))
	}
	if ev.index < 0 || ev.cancel {
		panic("sim: retime of a fired or cancelled event")
	}
	ev.at = t
	e.qof(ev).Fix(ev)
}

// SeqMark returns the most recently consumed sequence number. A caller
// that snapshots the mark and later observes it unchanged knows no
// event anywhere acquired a tie-break rank in between, so ranks it
// assigned earlier are still exactly ordered against the rest of the
// queue. The fabric's incremental reshare uses this to skip rank
// refreshes on quiet triggers.
func (e *Engine) SeqMark() uint64 { return e.seq }

// ReserveSeq consumes k sequence numbers without scheduling anything
// and returns the first reserved value. The caller may later attach
// the reserved ranks to events via AtRanked or PlaceRanked; until it
// does, the reserved range simply never dispatches. Reserving a block
// at a known point in virtual causality is how a batch of events can
// be ranked "as of" that point while their deadlines are derived
// later: events scheduled after the reservation always outrank the
// block. Consecutive reservations with no intervening rank
// consumption return adjacent ranges, so a block can be extended.
func (e *Engine) ReserveSeq(k int) uint64 {
	if k < 0 {
		panic("sim: negative sequence reservation")
	}
	e.seq += uint64(k)
	return e.seq - uint64(k) + 1
}

// AtRanked schedules fn at absolute time t with a caller-assigned
// sequence number previously obtained from ReserveSeq. The caller owns
// rank uniqueness: attaching the same reserved rank to two pending
// events leaves their mutual tie order undefined.
func (e *Engine) AtRanked(t Time, seq uint64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		*ev = Event{at: t, seq: seq, fn: fn}
	} else {
		ev = &Event{at: t, seq: seq, fn: fn}
	}
	e.queue.Push(ev)
	e.foreground++
	return ev
}

// PlaceRanked moves an event to absolute time t with a caller-assigned
// sequence number from ReserveSeq, reviving it if it was cancelled.
// Unlike Reschedule it consumes no fresh rank — the event's tie order
// is wholly determined by the reserved rank — and unlike Retime it may
// target tombstoned events. The event must still be queued.
func (e *Engine) PlaceRanked(ev *Event, t Time, seq uint64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: place at %v before now %v", t, e.now))
	}
	if ev.index < 0 {
		if !ev.cancel {
			panic("sim: place of a fired event")
		}
		// Tombstone evicted by a queue compaction: re-arm from scratch.
		ev.cancel = false
		ev.at = t
		ev.seq = seq
		e.qof(ev).Push(ev)
		if !ev.daemon {
			e.foreground++
		}
		return
	}
	if ev.cancel {
		ev.cancel = false
		e.tombstones--
		if !ev.daemon {
			e.foreground++
		}
	} else if ev.at == t && ev.seq == seq {
		// Already queued at exactly this (time, rank): the sift could
		// only put it back where it sits.
		return
	}
	ev.at = t
	ev.seq = seq
	e.qof(ev).Fix(ev)
}

// AtInstantEnd registers fn to run once the current virtual instant is
// exhausted: after every queued event with timestamp Now() has fired,
// before the clock advances to the next timestamp (or the run loop
// returns). Hooks run in registration order; a hook may schedule new
// events — including at the current instant, which re-opens it — and
// may register further hooks, which run when the instant next drains.
//
// This is the coalescing primitive: N same-instant triggers register
// one hook between them and pay for one recomputation, while anything
// that must observe intermediate state mid-instant can force it
// eagerly (fabric.Network.Flush) without perturbing the schedule.
func (e *Engine) AtInstantEnd(fn func()) {
	if fn == nil {
		panic("sim: AtInstantEnd with nil callback")
	}
	e.instantEnd = append(e.instantEnd, fn)
}

// runInstantEnd runs one batch of end-of-instant hooks, reporting
// whether any ran. Hooks registered during the batch are deferred to
// the next drain of the (possibly re-opened) instant.
func (e *Engine) runInstantEnd() bool {
	if len(e.instantEnd) == 0 {
		return false
	}
	fns := e.instantEnd
	e.instantEnd = nil
	for _, fn := range fns {
		fn()
	}
	return true
}

// Step fires the earliest pending event and advances the clock to its
// timestamp, running any end-of-instant hooks first when the earliest
// event would move the clock forward. It reports whether an event was
// fired.
func (e *Engine) Step() bool {
	for {
		ev := e.peek()
		if (ev == nil || ev.at > e.now) && e.runInstantEnd() {
			continue // hooks may have re-opened the current instant
		}
		if ev == nil {
			return false
		}
		e.qof(ev).Pop()
		e.now = ev.at
		if ev.daemon {
			e.daemons++
		} else {
			e.dispatched++
			e.foreground--
		}
		ev.fn()
		return true
	}
}

// enterRun guards against re-entrant dispatch: calling Run or RunUntil
// from inside an event callback would nest dispatch loops and reorder
// causality, so it panics loudly instead of corrupting the trace.
func (e *Engine) enterRun(what string) {
	if e.running {
		panic("sim: re-entrant " + what + " (called from inside an event callback)")
	}
	e.running = true
}

// Run dispatches events until no foreground events remain, then returns
// the final virtual time. Daemon events with timestamps before the last
// foreground event fire in order; daemon events scheduled past it stay
// queued and never fire, so a self-rescheduling daemon (the telemetry
// sampler) cannot extend the simulation or keep Run alive.
// End-of-instant hooks pending when the last foreground event fires
// still run (they may schedule new foreground work, which extends the
// run).
func (e *Engine) Run() Time {
	e.enterRun("Run")
	defer func() { e.running = false }()
	for {
		if e.foreground == 0 {
			if e.runInstantEnd() && e.foreground > 0 {
				continue
			}
			break
		}
		if e.parallel > 1 && e.racks != nil && e.parallelWindow() {
			continue
		}
		if !e.Step() {
			break
		}
	}
	return e.now
}

// RunUntil dispatches events with timestamps at or before deadline, then
// advances the clock exactly to deadline and returns it. Events scheduled
// after deadline remain queued; end-of-instant hooks for the last
// dispatched instant run before the clock jumps to the deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.enterRun("RunUntil")
	defer func() { e.running = false }()
	for {
		next := e.peek()
		if next == nil || next.at > deadline {
			if e.runInstantEnd() {
				continue // hooks may add events at or before the deadline
			}
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d Time) Time { return e.RunUntil(e.now + d) }

// peek returns the earliest live event across the hub queue and every
// rack sub-queue, discarding tombstones off each queue's head on the
// way. With no partitions it reduces to the historical single-queue
// peek.
func (e *Engine) peek() *Event {
	ev := e.skim(e.queue)
	for _, q := range e.racks {
		if r := e.skim(q); r != nil && (ev == nil || r.before(ev)) {
			ev = r
		}
	}
	return ev
}

// skim is peek on one queue: it pops tombstones off the head until a
// live event (or nothing) surfaces.
func (e *Engine) skim(q EventQueue) *Event {
	for {
		ev := q.Peek()
		if ev == nil || !ev.cancel {
			return ev
		}
		q.Pop()
		e.tombstones--
	}
}

// NextEventTime returns the timestamp of the earliest pending event, or
// Infinity when the queue is empty.
func (e *Engine) NextEventTime() Time {
	ev := e.peek()
	if ev == nil {
		return Infinity
	}
	return ev.at
}
