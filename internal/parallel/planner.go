package parallel

// Alg names the collective algorithm the planner picked for one
// communicator.
type Alg int

// The planner's algorithm menu.
const (
	// AlgNone: a single-member communicator needs no communication.
	AlgNone Alg = iota
	// AlgRing: one flat ring over the members — optimal when every hop
	// is the same intra-node fabric, and the forced baseline under
	// FlatRing.
	AlgRing
	// AlgHier: hierarchical reduce — intra-node rings, then a leader
	// ring, then broadcast — when members span nodes, so the slow tier
	// carries 2(g-1)/g·n instead of a flat ring's every-round crossing.
	AlgHier
	// AlgOffload: the COARSE-style path for rack-spanning trees on
	// machines whose CCI memory devices pool at the rack tier: members
	// push to their rack's device, the device ring reduces across racks
	// on fabric the workers never touch, members pull the result.
	AlgOffload
)

// String returns the lower-case algorithm name used in decision tables.
func (a Alg) String() string {
	switch a {
	case AlgNone:
		return "none"
	case AlgRing:
		return "ring"
	case AlgHier:
		return "hier"
	case AlgOffload:
		return "offload"
	}
	return "alg(?)"
}

// CommTopo is the placement oracle the planner consults: where each
// worker sits and whether pooled CCI devices sit on cross-rack paths.
type CommTopo struct {
	// Node returns a worker's server-node index.
	Node func(w int) int
	// Rack returns a worker's rack index.
	Rack func(w int) int
	// RackDevs reports that CCI memory devices pool at the rack tier —
	// the configuration where a rack-spanning reduction can offload onto
	// the device ring instead of hammering the spine from every worker.
	RackDevs bool
	// FlatRing forces AlgRing for every multi-member communicator: the
	// topology-blind baseline the ordering test compares against.
	FlatRing bool
}

// Choose picks the collective algorithm for one communicator from its
// membership span: ring within a node, hierarchical across nodes and
// racks, COARSE offload where rack-tier CCI devices sit on the path.
func Choose(members []int, t CommTopo) Alg {
	if len(members) <= 1 {
		return AlgNone
	}
	if t.FlatRing {
		return AlgRing
	}
	sameNode, sameRack := true, true
	n0, r0 := t.Node(members[0]), t.Rack(members[0])
	for _, w := range members[1:] {
		if t.Node(w) != n0 {
			sameNode = false
		}
		if t.Rack(w) != r0 {
			sameRack = false
		}
	}
	switch {
	case sameNode:
		return AlgRing
	case sameRack || !t.RackDevs:
		return AlgHier
	default:
		return AlgOffload
	}
}

// GroupBy splits members into sub-groups sharing a key, groups ordered
// by first appearance, members keeping their relative order — the
// shape collective.NewHierarchy consumes.
func GroupBy(members []int, key func(int) int) [][]int {
	idx := make(map[int]int)
	var out [][]int
	for _, w := range members {
		k := key(w)
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], w)
	}
	return out
}
