package sim

import (
	"fmt"
	"sync"
)

// Partitioned execution: conservative rack-parallel discrete-event
// simulation with byte-identical output.
//
// The engine's queue can be split into a hub queue plus one sub-queue
// per rack of the simulated machine. Events whose effects are confined
// to one rack (worker compute chains) are tagged with their rack and
// scheduled through a PartSched handle; everything else — fabric flows,
// strategy synchronization, telemetry daemons — stays on the hub.
//
// The dispatch loop then runs conservative parallel windows. A window
// is legal when the earliest rack event at time m precedes both the
// next hub event and m + lookahead, where lookahead is the minimum
// cross-rack interaction latency (for the training simulation: the
// minimum link latency, since every cross-rack effect rides at least
// one fabric hop). Each participating rack drains its events in
// [m, B) in its own goroutine. Rack callbacks may freely mutate their
// own rack's state, but anything with global effect — scheduling,
// deferred strategy calls — is recorded in a per-event op log instead
// of touching the engine.
//
// After the join, each drained event is re-queued into the hub queue
// as a "replay carrier": same (time, seq), its callback replaced by a
// replay of the op log. The engine's own sequential loop then
// dispatches the carriers in exact (time, seq) order — advancing the
// clock, counting Dispatched, running end-of-instant hooks, assigning
// fresh sequence numbers to spawned events at exactly the position the
// unpartitioned engine would have — so every counter, every tie-break
// and every downstream event is byte-identical to sequential
// execution. The parallelism is confined to the state the rack owns;
// the event program the engine observes is the sequential one.

// drainOp is one logged side effect of a drained rack event.
type drainOp struct {
	at   Time
	fn   func()
	part int32
	kind uint8
}

const (
	opSpawn uint8 = iota // schedule fn at (at, part) with a fresh seq
	opDefer              // run fn inline at the carrier's dispatch
)

// replayLog collects one drained event's ops, in call order.
type replayLog struct {
	ops []drainOp
}

// drainCtx is one rack's execution context while a parallel window is
// draining it: the rack-local virtual clock and the op log of the
// event currently running. Only the rack's drain goroutine touches it.
type drainCtx struct {
	now Time
	cur *replayLog
}

// EnablePartitions splits the engine's queue into racks sub-queues
// beside the hub queue and arms conservative parallel windows of the
// given lookahead, drained by up to parallel goroutines. racks < 2 is
// a no-op; parallel <= 1 keeps execution sequential over the merged
// queues (a determinism check: the merge itself must not change
// dispatch order). Must be called before Run; calling it twice panics.
func (e *Engine) EnablePartitions(racks int, lookahead Time, parallel int) {
	if racks < 2 {
		return
	}
	if e.racks != nil {
		panic("sim: EnablePartitions called twice")
	}
	e.racks = make([]EventQueue, racks)
	for i := range e.racks {
		e.racks[i] = newQueue(e.kind)
	}
	e.drains = make([]*drainCtx, racks)
	if lookahead < 0 {
		lookahead = 0
	}
	e.lookahead = lookahead
	if parallel < 1 {
		parallel = 1
	}
	e.parallel = parallel
}

// Partitioned reports whether EnablePartitions split the queue.
func (e *Engine) Partitioned() bool { return e.racks != nil }

// ParallelWindows returns how many conservative parallel windows the
// run loop executed.
func (e *Engine) ParallelWindows() uint64 { return e.pwindows }

// ParallelDrained returns how many events were drained inside parallel
// windows (each later dispatched once more as its own replay carrier).
func (e *Engine) ParallelDrained() uint64 { return e.pdrained }

// PartSched schedules events into one partition. It is the only handle
// rack-confined callbacks may schedule through: during a parallel
// window it routes into the rack's op log, outside one it is exactly
// the engine's At/Schedule with a partition tag. A hub handle (rack
// < 0, or partitioning disabled) degrades to the plain engine API, so
// callers wire it unconditionally.
type PartSched struct {
	e    *Engine
	part int32
}

// Sched returns the scheduling handle for a rack. Out-of-range racks
// and unpartitioned engines get the hub handle.
func (e *Engine) Sched(rack int) *PartSched {
	if e.racks == nil || rack < 0 || rack >= len(e.racks) {
		return &PartSched{e: e}
	}
	return &PartSched{e: e, part: int32(rack + 1)}
}

// draining returns the rack's live drain context, or nil outside a
// parallel window (and always nil for the hub handle).
func (s *PartSched) draining() *drainCtx {
	if s.part == 0 || s.e.drains == nil {
		return nil
	}
	return s.e.drains[s.part-1]
}

// Now returns the partition's current virtual time: the rack-local
// clock while draining, the engine clock otherwise.
func (s *PartSched) Now() Time {
	if d := s.draining(); d != nil {
		return d.now
	}
	return s.e.now
}

// At schedules fn at absolute time t in this handle's partition.
// Unlike Engine.At it returns no handle: rack events are
// fire-and-forget chains, and during a drain the event does not exist
// yet — it is materialized at the replay carrier's dispatch, where it
// receives exactly the sequence number the unpartitioned engine would
// have assigned.
func (s *PartSched) At(t Time, fn func()) {
	if d := s.draining(); d != nil {
		if t < d.now {
			panic(fmt.Sprintf("sim: schedule at %v before now %v", t, d.now))
		}
		if fn == nil {
			panic("sim: schedule with nil callback")
		}
		d.cur.ops = append(d.cur.ops, drainOp{at: t, fn: fn, part: s.part, kind: opSpawn})
		return
	}
	s.e.atPart(s.part, t, fn)
}

// Schedule registers fn to run after delay in this handle's partition.
func (s *PartSched) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule with negative delay %d", delay))
	}
	s.At(s.Now()+delay, fn)
}

// Defer runs fn at this event's exact position in the sequential
// dispatch order. Outside a drain that is right now, inline; during a
// drain, fn is logged and runs when the engine dispatches the event's
// replay carrier. Callbacks running on a rack partition must route
// every effect that escapes the rack — strategy notifications, shared
// counters whose accumulation order is observable — through Defer.
func (s *PartSched) Defer(fn func()) {
	if d := s.draining(); d != nil {
		d.cur.ops = append(d.cur.ops, drainOp{fn: fn, kind: opDefer})
		return
	}
	fn()
}

// drainResult is what one rack's drain goroutine hands back.
type drainResult struct {
	carriers   []*Event
	tombstones int
}

// parallelWindow attempts one conservative window. It reports whether
// a window ran (and carriers were queued); false means the caller
// should fall back to a sequential Step. Pending end-of-instant hooks
// force the sequential path: Step owns the instant-drain protocol.
func (e *Engine) parallelWindow() bool {
	if len(e.instantEnd) > 0 || e.lookahead <= 0 {
		return false
	}
	hub := e.skim(e.queue)
	m := Infinity
	for _, q := range e.racks {
		if h := e.skim(q); h != nil && h.at < m {
			m = h.at
		}
	}
	if m == Infinity {
		return false
	}
	bound := m + e.lookahead
	if bound < m {
		bound = Infinity // lookahead overflow: unreachable in practice
	}
	if hub != nil && hub.at < bound {
		bound = hub.at
	}
	if bound <= m {
		return false
	}
	var parts []int
	for i, q := range e.racks {
		if h := q.Peek(); h != nil && h.at < bound {
			parts = append(parts, i)
		}
	}
	if len(parts) < 2 {
		return false
	}

	e.pwindows++
	results := make([]drainResult, len(parts))
	sem := make(chan struct{}, e.parallel)
	var wg sync.WaitGroup
	for i, p := range parts {
		e.drains[p] = &drainCtx{}
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			sem <- struct{}{}
			results[i] = e.drainRack(p, bound)
			<-sem
		}(i, p)
	}
	wg.Wait()
	for _, p := range parts {
		e.drains[p] = nil
	}
	// Re-queue drained events as hub replay carriers, in rack order.
	// Push order does not affect dispatch order — (time, seq) is a
	// total order — but keeping it deterministic keeps queue internals
	// identical across parallel degrees too.
	for _, r := range results {
		e.tombstones -= r.tombstones
		for _, ev := range r.carriers {
			ev.part = 0
			e.queue.Push(ev)
			e.pdrained++
		}
	}
	return true
}

// drainRack runs every live event of one rack with timestamp below
// bound, recording each event's op log and converting the event into
// its own replay carrier. Runs on the rack's drain goroutine; it may
// touch only the rack queue, the rack's drainCtx, and whatever
// rack-owned simulation state the callbacks themselves mutate.
func (e *Engine) drainRack(p int, bound Time) drainResult {
	q := e.racks[p]
	d := e.drains[p]
	var res drainResult
	for {
		ev := q.Peek()
		for ev != nil && ev.cancel {
			q.Pop()
			res.tombstones++
			ev = q.Peek()
		}
		if ev == nil || ev.at >= bound {
			break
		}
		q.Pop()
		d.now = ev.at
		lg := &replayLog{}
		d.cur = lg
		ev.fn()
		ev.fn = e.replayFn(lg)
		res.carriers = append(res.carriers, ev)
	}
	d.cur = nil
	return res
}

// replayFn wraps a drained event's op log as its carrier callback:
// dispatched by the sequential loop at the event's original (time,
// seq), it performs the event's external effects in recorded order —
// spawns receive fresh sequence numbers here, exactly where the
// unpartitioned engine would have assigned them.
func (e *Engine) replayFn(lg *replayLog) func() {
	return func() {
		for _, op := range lg.ops {
			if op.kind == opDefer {
				op.fn()
				continue
			}
			e.atPart(op.part, op.at, op.fn)
		}
	}
}
