// Package fabric simulates an interconnect at flow granularity.
//
// Links are full-duplex: each link owns two independent directed channels
// with their own capacity, which is what lets the simulation reproduce the
// paper's bidirectional-bandwidth effects (Section III-E: a PCIe link
// carries a push and a pull concurrently at close to 2x the unidirectional
// rate). A transfer is a Flow over a path of channels. Whenever the set of
// active flows changes, the network recomputes every flow's rate with
// progressive-filling max-min fairness, so contention on shared hops (a
// switch uplink, the CPU host bridge) emerges from the topology rather
// than from per-experiment constants.
//
// # Hot-path structure
//
// Rate recomputation is requested by three triggers — flow admission,
// flow completion, capacity change — but runs lazily: triggers mark the
// network dirty and the actual progressive-filling pass is coalesced to
// one per virtual instant via a sim.Engine end-of-instant hook. Any
// observer that needs current rates mid-instant (telemetry gauges,
// Flow.Rate) forces the pending pass first through Flush, so observable
// state is exactly what the eager per-trigger implementation produced,
// while N same-instant triggers pay for one pass instead of N.
//
// The pass itself allocates nothing and walks contiguous memory:
// per-channel progressive-filling scratch lives in struct-of-arrays
// owned by the Network, indexed by dense channel id and stamped with a
// reshare epoch so stale scratch is ignored without clearing. Live
// flows are gathered once per pass into parallel rate/path-id arrays,
// and the progressive-filling rounds walk an admission-ordered
// worklist of still-unassigned flows, so the inner loops touch int32
// channel ids and flat float64 arrays instead of chasing Flow and
// Channel pointers. Completion events are
// re-examined once per dirty instant but only moved when the flow's
// completion instant actually changed (an exact integer-nanosecond
// comparison), and finished flows leave the per-channel active lists
// by tombstone + amortized compaction so completion cost no longer
// scales with the number of concurrent flows on every hop.
//
// Determinism is byte-exact with respect to the historical eager
// implementation, which cancelled and re-created every completion
// event on every trigger and thereby re-ranked them after everything
// already scheduled in the instant. The incremental version reproduces
// those same-nanosecond tie-breaks without the heap traffic by
// reserving a contiguous block of dispatch ranks per instant
// (sim.Engine.ReserveSeq) that the end-of-instant flush attaches to
// events in flow-admission order; a SeqMark snapshot detects whether
// any foreign event took a rank since the block was reserved, in which
// case (and only then) the block is re-reserved. See
// refreshCompletions and scheduleCompletions.
//
// # Opt-in scale accelerations
//
// Two further optimizations are off by default and enabled per network
// (COARSE_FLOW_AGG / COARSE_FASTFORWARD, or the corresponding
// setters), because each reshapes the hot path enough that the
// byte-identity argument deserves its own paragraph:
//
// Flow aggregation (COARSE_FLOW_AGG): collective phases emit fans of
// pairwise-identical transfers — same path, same size, admitted
// back-to-back at one instant. Callers mark such fans with an AggTag;
// members after the first fold into the first member's Flow entry as a
// multiplicity count instead of new entries, provided no foreign
// admission interleaved (the lastAdmitted check — an interleaved entry
// would change gather order and therefore float fold order). The
// progressive-filling pass charges a group's bottleneck m times by
// repeated subtraction (never share*m: float multiply is not repeated
// addition), so residuals, rates, and stall decisions are bitwise what
// m separate entries produce. Completion fans back out: the group's
// carrier event fires at the first of the m consecutive ranks reserved
// for the group and re-materializes one event per remaining member at
// the following ranks, so per-member completion dispatches — count,
// order, and interleaving with everything else — are exactly the
// unaggregated schedule's.
//
// Steady-state fast-forward (COARSE_FASTFORWARD): between collective
// boundaries the fabric sees long completion-only cascades whose
// surviving allocation is provably constant, yet each completion pays
// a full filling pass to rediscover it. Every pass records which
// channel froze each flow; a pass whose triggers since the previous
// pass were completions only may be skipped when no surviving flow was
// frozen on (and no flow stalled across) any channel of the completed
// flows' paths — then no surviving filling round's bottleneck changed,
// so every surviving rate is bitwise the cached one and only the
// utilization fold needs to run. The fold itself walks a maintained
// list of non-idle channels (rather than all channels) and reuses the
// cached channel rate wherever the completion touched none of the
// channel's flows; a re-sum would add the same float64 summands in the
// same order, so the reuse is exact. An admission burst whose entrants
// are channel-disjoint from every survivor (each channel an entrant
// crosses carries only this instant's entrants) is also served without
// a full pass: max-min filling decomposes over connected components,
// so survivors replay their cached rates and the entrants fill locally
// from full-capacity residuals with identical float operations
// (ffAdmitPass). Everything else — overlapping admissions, a member
// joining a group a mid-instant pass already rated, stalled flows,
// capacity changes, and chaos actuations (which arrive as capacity
// changes) — forces a full pass, which is what makes the skip exact
// rather than approximate.
package fabric

import (
	"fmt"
	"math"
	"os"
	"sort"

	"coarse/internal/sim"
)

// Channel is one direction of a link. Capacity is in bytes per second.
// Per-reshare scratch does not live here: it sits in struct-of-arrays
// on the owning Network, indexed by the channel's dense id, so the
// progressive-filling pass walks flat arrays instead of these structs.
type Channel struct {
	name     string
	id       int32 // dense index into the network's channel SoA scratch
	capacity float64
	latency  sim.Time
	net      *Network // owner; reads force a pending reshare to run

	active []*Flow // flows crossing this channel, tombstones included
	live   int     // unfinished entries in active
	dead   int     // finished (tombstoned) entries in active

	// accounting
	bytesCarried float64
	busyIntegral float64  // integral of allocated rate over time, bytes
	lastAccount  sim.Time // last time busyIntegral was folded
	currentRate  float64  // sum of allocated flow rates right now

	inActive bool // member of the network's non-idle channel list
}

// Name returns the channel's diagnostic name.
func (c *Channel) Name() string { return c.name }

// Capacity returns the channel capacity in bytes per second.
func (c *Channel) Capacity() float64 { return c.capacity }

// Latency returns the channel propagation latency.
func (c *Channel) Latency() sim.Time { return c.latency }

// BytesCarried returns the total payload bytes that have finished
// crossing this channel.
func (c *Channel) BytesCarried() float64 { return c.bytesCarried }

// CurrentRate returns the sum of the max-min rates currently allocated
// to flows on this channel, in bytes per second. It changes only at
// reshares, so sampling it yields the exact piecewise-constant rate
// series. Reading it forces any reshare pending at the current instant
// to run first.
func (c *Channel) CurrentRate() float64 {
	c.net.Flush()
	return c.currentRate
}

// ActiveFlowCount returns the number of flows currently crossing the
// channel (bandwidth phase only).
func (c *Channel) ActiveFlowCount() int { return c.live }

// IntegratedBytes returns the exact integral of the channel's
// allocated rate over [0, now] — the bytes' worth of busy time
// accumulated so far, extrapolating the current rate from the last
// accounting fold to now. Utilization is this integral normalized by
// capacity*now; telemetry samples it so the dumped series integrates
// to the run aggregates bit-for-bit. Reading it forces any reshare
// pending at the current instant to run first.
func (c *Channel) IntegratedBytes(now sim.Time) float64 {
	c.net.Flush()
	return c.busyIntegral + c.currentRate*(now-c.lastAccount).ToSeconds()
}

// Utilization returns the mean fraction of capacity used on [0, now].
func (c *Channel) Utilization(now sim.Time) float64 {
	if now <= 0 || c.capacity <= 0 {
		return 0
	}
	return c.IntegratedBytes(now) / (c.capacity * now.ToSeconds())
}

func (c *Channel) account(now sim.Time, newRate float64) {
	dt := (now - c.lastAccount).ToSeconds()
	if dt > 0 {
		c.busyIntegral += c.currentRate * dt
	}
	c.lastAccount = now
	c.currentRate = newRate
}

// Link is a full-duplex connection between two topology endpoints.
type Link struct {
	name string
	fwd  *Channel
	rev  *Channel
}

// Name returns the link name given at creation.
func (l *Link) Name() string { return l.name }

// Fwd returns the forward-direction channel (A to B).
func (l *Link) Fwd() *Channel { return l.fwd }

// Rev returns the reverse-direction channel (B to A).
func (l *Link) Rev() *Channel { return l.rev }

// Flow is a single in-flight transfer across a path of channels — or,
// when flow aggregation folded symmetric siblings into it, the shared
// entry for a whole group of them (mult > 1). Per-member state that
// matters for byte identity (completion dispatch position, onDone,
// per-channel byte accounting) is re-materialized at completion; all
// other state is provably identical across members and stored once.
type Flow struct {
	id        uint64
	path      []*Channel
	pathIDs   []int32 // dense channel ids of path, the reallocate view
	size      float64 // per member
	remaining float64 // per member (members stay bitwise identical)
	rate      float64 // per member
	lastTick  sim.Time
	admitEv   *sim.Event
	done      *sim.Event // group carrier when mult > 1
	onDone    func()
	started   bool
	finished  bool
	ephemeral bool // started via StartEphemeral: recycled once unreferenced
	listRefs  int  // tombstone references still held by active lists
	net       *Network
	start     sim.Time
	finish    sim.Time

	mult     int      // live members sharing this entry (1 = plain flow)
	pending  bool     // admitted since the last pass (in Network.instAdmits)
	dones    []func() // per-member onDone once a second member joins
	doneBase int      // index into dones of the first still-live member
	doneRank uint64   // rank of done; members fan out at doneRank+1..+mult-1
	tag      *AggTag  // aggregation tag carried from emission to admit
	bneck    int32    // channel that froze this entry in the last full pass, -1 none
}

// AggTag marks a fan of transfers as aggregation candidates: callers
// that emit several transfers with the same path, size, and start
// instant pass one tag (zero value, one per fan) to
// StartEphemeralTagged and the fabric folds the fan into a single
// multiplicity-counted entry when flow aggregation is enabled. The tag
// is only a hint — members that turn out not to be symmetric, or that
// get interleaved with foreign admissions, are admitted individually
// and the simulation is byte-identical either way.
type AggTag struct {
	group *Flow    // candidate entry, valid only while at == now
	at    sim.Time // admission instant group was recorded at
}

// Size returns the flow's total payload in bytes.
func (f *Flow) Size() float64 { return f.size }

// Remaining returns the bytes not yet delivered as of the last rate
// change (remaining is settled lazily: it is exact at every reshare
// instant and at completion).
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the flow's current max-min allocated rate in bytes/sec,
// forcing any reshare pending at the current instant to run first.
func (f *Flow) Rate() float64 {
	f.net.Flush()
	return f.rate
}

// Finished reports whether the flow has fully delivered its payload.
func (f *Flow) Finished() bool { return f.finished }

// StartTime returns when the flow entered the bandwidth phase.
func (f *Flow) StartTime() sim.Time { return f.start }

// FinishTime returns when the flow delivered its last byte; it is only
// meaningful once Finished reports true.
func (f *Flow) FinishTime() sim.Time { return f.finish }

// Network owns the channels and active flows and drives rate allocation.
type Network struct {
	eng       *sim.Engine
	flows     []*Flow // admission order, tombstones included
	liveFlows int
	deadFlows int // finished (tombstoned) entries in flows
	nextID    uint64
	links     []*Link
	channels  []*Channel // both directions of every link, dense-id order

	// Channel SoA scratch for the progressive-filling pass, indexed by
	// dense channel id. An entry is valid only when its epoch stamp
	// matches the network's current reshare epoch; stamping replaces
	// clearing, so an idle channel costs nothing per pass.
	chEpoch      []uint64
	chResidual   []float64
	chUnassigned []int32
	chRound      []uint64 // round stamp: channel's share already examined
	roundSeq     uint64   // current bottleneck-scan round

	// Flow SoA scratch, rebuilt each pass from the live flows in
	// admission order: parallel rate array, concatenated path ids with
	// offsets, and the worklist of still-unassigned flow indices.
	passFlows []*Flow
	passRate  []float64
	passOff   []int32
	passPath  []int32
	passWork  []int32

	ratesDirty  bool     // rates are stale; a pass must run before any rate read
	eventsDirty bool     // completion deadlines await settling at instant end
	lastSettle  sim.Time // last instant settle folded elapsed time
	epoch       uint64   // current reshare epoch (stamps channel scratch)

	// Completion-event rank bookkeeping (see refreshCompletions).
	seqMark      uint64   // engine SeqMark at our last rank refresh
	rankBase     uint64   // first rank of the block reserved at the last refresh
	rankReserved int      // ranks reserved in the current block
	dueInstant   sim.Time // instant whose due-event park scan has run
	dueFloor     sim.Time // no live completion event is due before this

	// hot-path telemetry
	requests    uint64 // reshare triggers observed
	passes      uint64 // progressive-filling passes actually run
	rescheduled uint64 // completion events moved by a pass
	skipped     uint64 // completion events left in place by a pass

	// Flow aggregation (COARSE_FLOW_AGG; see the package comment).
	aggregate    bool
	lastAdmitted *Flow  // last entry admitted; joins require no interleaving
	aggregated   uint64 // members folded into a group entry instead of admitted
	groupObs     func(int)

	// Steady-state fast-forward (COARSE_FASTFORWARD).
	fastForward bool
	trigMask    uint8   // trigger kinds observed since the last pass
	ffValid     bool    // freeze bookkeeping below reflects the last pass
	stalled     int     // entries the last full pass left with rate 0
	frozenCount []int32 // live entries frozen per channel, dense id
	frozenList  []int32 // channels with frozenCount != 0
	ffPaths     []int32 // path ids of members completed since the last pass
	chTouched   []uint64
	ffEpoch     uint64
	activeCh    []*Channel // non-idle channels, the fold worklist
	ffPasses    uint64     // passes served by the fast-forward skip
	ffAdmits    uint64     // fast-forward passes that filled an entrant burst

	// Admission fast-forward bookkeeping: the entries admitted since
	// the last pass, in admission order, plus per-channel scratch for
	// the disjointness check (entrantCnt is always zero between
	// checks; entrantIDs carries the burst's channel set to the fold).
	instAdmits []*Flow
	entrantCnt []int32
	entrantIDs []int32
	joinedLate bool // a member joined a group that already holds a rate

	passBneck []int32 // per-gathered-flow freezing channel, full pass scratch

	flowPool []*Flow // recycled ephemeral flows
}

// Trigger kinds accumulated in trigMask between reallocation passes.
const (
	trigAdmit uint8 = 1 << iota
	trigComplete
	trigCapacity
)

// Environment switches for the opt-in scale accelerations, read once
// per NewNetwork (mirroring COARSE_EVENT_QUEUE / COARSE_PARTITION).
const (
	flowAggEnv     = "COARSE_FLOW_AGG"
	fastForwardEnv = "COARSE_FASTFORWARD"
)

func envEnabled(name string) bool {
	switch os.Getenv(name) {
	case "1", "on", "true":
		return true
	}
	return false
}

// DefaultFlowAggregation reports whether COARSE_FLOW_AGG asks for flow
// aggregation ("1", "on", or "true").
func DefaultFlowAggregation() bool { return envEnabled(flowAggEnv) }

// DefaultFastForward reports whether COARSE_FASTFORWARD asks for
// steady-state fast-forward ("1", "on", or "true").
func DefaultFastForward() bool { return envEnabled(fastForwardEnv) }

// maxFlowPool bounds the network's flow free-list.
const maxFlowPool = 4096

// listCompactMin is the tombstone floor below which active lists are
// not compacted.
const listCompactMin = 16

// farFuture is the provisional deadline given to a completion event
// whose final time has not been derived yet: far enough that it can
// never dispatch before the end-of-instant flush retimes it.
const farFuture = sim.Time(math.MaxInt64)

// NewNetwork creates an empty network bound to a simulation engine.
// The opt-in scale accelerations start from their environment
// defaults (COARSE_FLOW_AGG, COARSE_FASTFORWARD).
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{
		eng:         eng,
		lastSettle:  -1,
		dueInstant:  -1,
		aggregate:   DefaultFlowAggregation(),
		fastForward: DefaultFastForward(),
	}
}

// EnableFlowAggregation switches symmetric-fan aggregation on or off.
// Safe at any point: already-admitted groups drain normally, and
// toggling changes nothing observable (aggregation is byte-exact).
func (n *Network) EnableFlowAggregation(on bool) { n.aggregate = on }

// FlowAggregationEnabled reports whether tagged symmetric fans are
// being folded into multiplicity-counted entries.
func (n *Network) FlowAggregationEnabled() bool { return n.aggregate }

// EnableFastForward switches the steady-state pass skip on or off.
// Safe at any point: the first pass after enabling is always a full
// pass (the skip needs freeze bookkeeping only full passes record).
func (n *Network) EnableFastForward(on bool) {
	n.fastForward = on
	if !on {
		n.ffValid = false
	}
}

// FastForwardEnabled reports whether completion-only instants may skip
// the progressive-filling pass.
func (n *Network) FastForwardEnabled() bool { return n.fastForward }

// Engine returns the simulation engine the network schedules on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Links returns all links created on this network, in creation order.
func (n *Network) Links() []*Link { return n.links }

// ActiveFlows returns the number of flows in their bandwidth phase.
func (n *Network) ActiveFlows() int { return n.liveFlows }

// ReshareRequests returns the number of reshare triggers observed: one
// per flow admission, completion, or capacity change. This is the
// series the fabric/reshares telemetry gauge samples (and what
// Reshares itself counted before passes were coalesced).
func (n *Network) ReshareRequests() uint64 { return n.requests }

// Reshares returns the number of max-min fair reallocation passes the
// network has actually run. Same-instant triggers are coalesced into
// one pass, so this is at most ReshareRequests; the difference is
// ResharesCoalesced.
func (n *Network) Reshares() uint64 { return n.passes }

// ResharesCoalesced returns how many reshare triggers were absorbed by
// a pass that served more than one trigger.
func (n *Network) ResharesCoalesced() uint64 { return n.requests - n.passes }

// CompletionsRescheduled returns how many completion events a reshare
// pass actually moved to a new instant.
func (n *Network) CompletionsRescheduled() uint64 { return n.rescheduled }

// CompletionsSkipped returns how many completion events reshare passes
// left untouched because the flow's completion instant did not move
// (exact integer-nanosecond comparison).
func (n *Network) CompletionsSkipped() uint64 { return n.skipped }

// FlowsAggregated returns how many transfers were folded into an
// existing group entry instead of admitted as their own flow. Zero
// unless flow aggregation is enabled and callers tag symmetric fans.
func (n *Network) FlowsAggregated() uint64 { return n.aggregated }

// FastForwardPasses returns how many reallocation passes were served
// by the steady-state skip (they are included in Reshares, whose count
// is identical with the optimization on or off).
func (n *Network) FastForwardPasses() uint64 { return n.ffPasses }

// FastForwardAdmissions counts the fast-forward passes that filled a
// disjoint entrant burst (ffAdmitPass), a subset of
// FastForwardPasses.
func (n *Network) FastForwardAdmissions() uint64 { return n.ffAdmits }

// OnGroupComplete registers an observer called with the member count
// of every aggregated group as its completion fans out; telemetry uses
// it for the group-size histogram. Only one observer is kept.
func (n *Network) OnGroupComplete(fn func(members int)) { n.groupObs = fn }

// NewLink creates a full-duplex link. fwdCap and revCap are bytes per
// second for the two directions; most physical links are symmetric but
// e.g. the paper's FPGA prototype writes slower than it reads.
func (n *Network) NewLink(name string, fwdCap, revCap float64, latency sim.Time) *Link {
	if fwdCap <= 0 || revCap <= 0 {
		panic(fmt.Sprintf("fabric: link %q with non-positive capacity", name))
	}
	if latency < 0 {
		panic(fmt.Sprintf("fabric: link %q with negative latency", name))
	}
	l := &Link{
		name: name,
		fwd:  &Channel{name: name + "/fwd", capacity: fwdCap, latency: latency, net: n},
		rev:  &Channel{name: name + "/rev", capacity: revCap, latency: latency, net: n},
	}
	l.fwd.id = int32(len(n.channels))
	n.channels = append(n.channels, l.fwd)
	l.rev.id = int32(len(n.channels))
	n.channels = append(n.channels, l.rev)
	n.links = append(n.links, l)
	return l
}

// PathLatency sums the propagation latency along a path.
func PathLatency(path []*Channel) sim.Time {
	var total sim.Time
	for _, c := range path {
		total += c.latency
	}
	return total
}

// StartFlow begins a transfer of size bytes along path. The flow first
// waits out the path propagation latency, then enters the shared
// bandwidth phase. onDone (may be nil) fires when the last byte arrives.
// A zero-size flow completes right after the latency phase.
func (n *Network) StartFlow(path []*Channel, size float64, onDone func()) *Flow {
	f := &Flow{}
	n.start(f, path, size, onDone)
	return f
}

// StartEphemeral is StartFlow for callers that do not retain the flow
// handle: the Flow object is recycled once it has finished and left
// every active list, so steady-state transfer traffic allocates
// nothing per flow. The flow must not be referenced after onDone
// returns (there is no way to, short of capturing it inside onDone —
// don't).
func (n *Network) StartEphemeral(path []*Channel, size float64, onDone func()) {
	f := n.newFlow()
	f.ephemeral = true
	n.start(f, path, size, onDone)
}

// StartEphemeralTagged is StartEphemeral for a member of a symmetric
// fan: every transfer started with the same tag that shares the fan's
// path (the same path slice — routes from a topology cache qualify),
// size, and admission instant may be aggregated into one
// multiplicity-counted entry when flow aggregation is enabled. The tag
// must be zero-valued at the fan's first transfer and must not be
// shared across fans that could interleave with each other's
// admissions; a fresh tag per fan is always correct.
func (n *Network) StartEphemeralTagged(tag *AggTag, path []*Channel, size float64, onDone func()) {
	f := n.newFlow()
	f.ephemeral = true
	f.tag = tag
	n.start(f, path, size, onDone)
}

func (n *Network) start(f *Flow, path []*Channel, size float64, onDone func()) {
	if len(path) == 0 {
		panic("fabric: flow with empty path")
	}
	if size < 0 {
		panic("fabric: flow with negative size")
	}
	n.nextID++
	f.id = n.nextID
	f.path = path
	f.pathIDs = f.pathIDs[:0]
	for _, c := range path {
		f.pathIDs = append(f.pathIDs, c.id)
	}
	f.size = size
	f.remaining = size
	f.onDone = onDone
	f.net = n
	f.mult = 1
	f.bneck = -1
	lat := PathLatency(path)
	f.admitEv = n.eng.Schedule(lat, func() { n.admit(f) })
}

// Transfer is a convenience wrapper for StartFlow with an int64 size.
func (n *Network) Transfer(path []*Channel, size int64, onDone func()) *Flow {
	return n.StartFlow(path, float64(size), onDone)
}

// TransferEphemeral is a convenience wrapper for StartEphemeral with
// an int64 size.
func (n *Network) TransferEphemeral(path []*Channel, size int64, onDone func()) {
	n.StartEphemeral(path, float64(size), onDone)
}

// TransferEphemeralTagged is a convenience wrapper for
// StartEphemeralTagged with an int64 size.
func (n *Network) TransferEphemeralTagged(tag *AggTag, path []*Channel, size int64, onDone func()) {
	n.StartEphemeralTagged(tag, path, float64(size), onDone)
}

func (n *Network) admit(f *Flow) {
	now := n.eng.Now()
	n.eng.Recycle(f.admitEv)
	f.admitEv = nil
	f.started = true
	f.start = now
	tag := f.tag
	f.tag = nil
	if f.remaining == 0 {
		f.finished = true
		f.finish = now
		if f.onDone != nil {
			f.onDone()
		}
		if f.ephemeral {
			n.recycleFlow(f)
		}
		return
	}
	n.requests++
	n.settle(now)
	if tag != nil && n.aggregate {
		// Join the tag's group if this admission is exactly a repeat of
		// the group's: same instant, same path slice, same size, and —
		// load-bearing for byte identity — no foreign admission in
		// between (an interleaved entry would sit between the members in
		// gather order, changing per-channel float fold order). The
		// instant check runs first: it proves tag.group was recorded at
		// this very instant, so the pointer is alive (a non-empty flow
		// admitted now cannot complete, compact, and be recycled before
		// now ends — its deadline rounds up to at least one nanosecond).
		if g := tag.group; g != nil && tag.at == now && g == n.lastAdmitted &&
			g.size == f.size && len(g.path) == len(f.path) && &g.path[0] == &f.path[0] {
			if len(g.dones) == 0 {
				g.dones = append(g.dones[:0], g.onDone)
				g.onDone = nil
			}
			g.dones = append(g.dones, f.onDone)
			g.mult++
			n.liveFlows++
			for _, c := range g.path {
				c.live++
			}
			n.aggregated++
			n.trigMask |= trigAdmit
			if !g.pending {
				// A mid-instant pass already rated the group; growing its
				// multiplicity invalidates that rate, which only a full
				// pass re-derives.
				n.joinedLate = true
			}
			n.recycleFlow(f)
			n.refreshCompletions(now)
			n.markDirty()
			return
		}
		tag.group = f
		tag.at = now
	}
	n.flows = append(n.flows, f)
	n.liveFlows++
	n.lastAdmitted = f
	f.lastTick = now
	f.pending = true
	n.instAdmits = append(n.instAdmits, f)
	f.listRefs = len(f.path) + 1
	for _, c := range f.path {
		c.active = append(c.active, f)
		c.live++
		if !c.inActive {
			c.inActive = true
			n.activeCh = append(n.activeCh, c)
		}
	}
	n.trigMask |= trigAdmit
	n.refreshCompletions(now)
	n.markDirty()
}

// settle folds elapsed time into every active flow's remaining count so a
// rate change applies from "now" onward. It runs at most once per
// instant: repeat calls at the same virtual time are no-ops by
// construction (dt is zero for every flow).
func (n *Network) settle(now sim.Time) {
	if n.lastSettle == now {
		return
	}
	n.lastSettle = now
	for _, f := range n.flows {
		if f.finished {
			continue
		}
		dt := (now - f.lastTick).ToSeconds()
		if dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.lastTick = now
	}
}

// refreshCompletions fixes the tie-break ranks of the live flows'
// completion events "as of" the current trigger point, without
// deriving rates or deadlines. The eager implementation cancelled and
// re-created every completion event on every trigger, so after the
// last fabric trigger of an instant each completion event carried a
// fresh sequence number — outranking every event scheduled earlier in
// the instant, outranked by anything scheduled later (e.g. by a
// completion's own onDone). Same-nanosecond ties must keep resolving
// exactly that way, but paying an O(flows) heap pass per trigger for
// it is what made reshares quadratic, so the refresh is lazy:
//
//   - A contiguous rank block is reserved (sim.Engine.ReserveSeq) for
//     the live flows at the trigger; the end-of-instant flush attaches
//     block ranks to events in flow-admission order, which is exactly
//     the order the eager re-create consumed sequence numbers in.
//   - If no event anywhere acquired a rank since the block was
//     reserved (sim.Engine.SeqMark unchanged), re-reserving at this
//     trigger would be a monotone relabeling of the same block —
//     invisible to dispatch order — so the trigger is O(1): keep the
//     block, extending it if admissions outgrew it. Pure completion
//     cascades stay on this path because the flush places events with
//     reserved ranks and consumes no fresh ones.
//   - Otherwise some foreign event now outranks the block, where the
//     eager re-create would have ranked completions above it. Events
//     due at this very instant take fresh ranks immediately (they may
//     fire before the flush), then a fresh block is reserved for the
//     deadlines the flush will place.
//
// Independently, once per instant, events that are due now but can no
// longer fire now — bytes still pending after the settle, or a stalled
// rate — are parked in the far future (rank-preserving Retime; their
// rank is dead weight until the flush re-places them anyway). The
// eager code re-created these with the true post-pass deadline; the
// flush does the equivalent retiming at instant end.
func (n *Network) refreshCompletions(now sim.Time) {
	if n.dueInstant != now {
		n.dueInstant = now
		// The scan has work only when some live deadline has been
		// reached: dueFloor is the minimum the last flush placed, so a
		// later instant means nothing can be due (events only move
		// later between flushes — parking and chaos retiming both push
		// toward the far future).
		if n.dueFloor <= now {
			for _, f := range n.flows {
				if f.finished || f.done == nil || f.done.Cancelled() {
					continue
				}
				if f.done.Time() <= now && (f.remaining != 0 || f.rate <= 0) {
					n.eng.Retime(f.done, farFuture)
				}
			}
		}
	}
	if n.eng.SeqMark() == n.seqMark {
		if n.liveFlows > n.rankReserved {
			n.eng.ReserveSeq(n.liveFlows - n.rankReserved)
			n.rankReserved = n.liveFlows
			n.seqMark = n.eng.SeqMark()
		}
		return
	}
	for _, f := range n.flows {
		if f.finished || f.done == nil || f.done.Cancelled() {
			continue
		}
		if f.done.Time() <= now {
			// Due at this instant and still able to fire at it: re-rank
			// above the foreign events, in flow-admission order. A group
			// carrier consumes one fresh rank per member — exactly what
			// the members' own reschedules would — and keeps the member
			// ranks consecutive behind it for the completion fan-out.
			n.eng.Reschedule(f.done, now)
			if f.mult > 1 {
				f.doneRank = n.eng.ReserveSeq(f.mult-1) - 1
			}
		}
	}
	n.rankBase = n.eng.ReserveSeq(n.liveFlows)
	n.rankReserved = n.liveFlows
	n.seqMark = n.eng.SeqMark()
}

// markDirty records a reshare trigger and arranges for one coalesced
// reallocation pass at the end of the current virtual instant.
func (n *Network) markDirty() {
	if !n.eventsDirty {
		n.eventsDirty = true
		n.eng.AtInstantEnd(n.flush)
	}
	n.ratesDirty = true
}

// Flush derives the rates pending at the current instant, if any.
// Observers of rate-derived state (telemetry gauges, Flow.Rate,
// utilization reads) call it so that coalescing is invisible: they see
// exactly the piecewise-constant state the eager per-trigger
// implementation exposed at the same virtual time. Completion
// deadlines are NOT settled here — they only need to be final by the
// end of the instant, and settling them mid-instant would perturb the
// tie-break ranks refreshCompletions fixed at the last trigger.
func (n *Network) Flush() {
	if n.ratesDirty {
		n.ratesDirty = false
		n.reallocate(n.eng.Now())
	}
}

// flush is the end-of-instant hook: derive rates if still stale, then
// settle completion deadlines.
func (n *Network) flush() {
	now := n.eng.Now()
	if n.ratesDirty {
		n.ratesDirty = false
		n.reallocate(now)
	}
	if n.eventsDirty {
		n.eventsDirty = false
		n.scheduleCompletions(now)
	}
}

// reallocate recomputes max-min fair rates by progressive filling and
// folds per-channel utilization accounting. It does not touch
// completion events; scheduleCompletions does that at instant end.
//
// The pass runs entirely on struct-of-arrays scratch: live flows are
// gathered once (admission order) into parallel rate / path-id arrays,
// channel residual and unassigned counts live in dense-id-indexed
// arrays on the Network, and each filling round walks an
// admission-ordered worklist of still-unassigned flow indices. Scan
// order, float operation order, and the strict `<` bottleneck
// tie-break are exactly those of the pointer-walking implementation,
// so every rate — and every golden downstream of one — is
// bit-identical.
func (n *Network) reallocate(now sim.Time) {
	if n.fastForward && n.ffValid && n.stalled == 0 && n.ffStable() {
		if n.trigMask == trigComplete {
			n.ffPass(now)
			n.passDone()
			return
		}
		if n.trigMask&^(trigAdmit|trigComplete) == 0 && n.entrantsDisjoint() {
			n.ffAdmitPass(now)
			n.passDone()
			return
		}
	}
	n.passDone()
	n.passes++
	n.epoch++
	if len(n.chEpoch) < len(n.channels) {
		n.chEpoch = make([]uint64, len(n.channels))
		n.chResidual = make([]float64, len(n.channels))
		n.chUnassigned = make([]int32, len(n.channels))
		n.chRound = make([]uint64, len(n.channels))
		n.roundSeq = 0
		n.frozenCount = make([]int32, len(n.channels))
		n.chTouched = make([]uint64, len(n.channels))
		n.frozenList = n.frozenList[:0]
		n.ffValid = false
	}
	pf, pr, pb := n.fill(n.flows)
	if n.fastForward {
		// Record which channel froze each entry: the steady-state skip
		// is legal only while completions depart channels nobody
		// surviving was frozen on. Rebuilt from scratch every full pass.
		for _, id := range n.frozenList {
			n.frozenCount[id] = 0
		}
		n.frozenList = n.frozenList[:0]
		n.stalled = 0
		for i, f := range pf {
			if pr[i] <= 0 {
				n.stalled++
				f.bneck = -1
				continue
			}
			b := pb[i]
			f.bneck = b
			if n.frozenCount[b] == 0 {
				n.frozenList = append(n.frozenList, b)
			}
			n.frozenCount[b]++
		}
		n.ffValid = true
	} else {
		n.ffValid = false
	}
	// Fold per-channel utilization accounting. A channel with no live
	// flows and a zero current rate is skipped outright: folding it
	// would add rate*dt = 0 to the integral and re-store a zero rate,
	// and IntegratedBytes extrapolates the zero rate past the stale
	// lastAccount stamp, so the skip is exact. Every other channel is
	// visited so one that just went idle stops accumulating busy time.
	// Summation order is the channel's active list in admission order —
	// the same order the eager implementation summed — so the folded
	// integrals are bit-identical. With fast-forward on, the fold walks
	// the maintained non-idle channel list instead of every channel;
	// the skipped channels are exactly those the full scan skips, and
	// channels are independent, so the result is unchanged.
	if n.fastForward {
		n.foldActive(now)
		return
	}
	for _, c := range n.channels {
		if c.live == 0 && c.currentRate == 0 {
			continue
		}
		c.account(now, channelRate(c))
	}
}

// fill runs one progressive filling over the given entries (admission
// order), assigning every live one a rate. It is the shared core of
// the full pass (every live flow) and of the admission fast-forward
// (only the instant's entrant burst): per-channel scratch is
// epoch-stamped on first touch, so filling a subset performs exactly
// the subset's operations. Returns the gathered entries with their
// parallel rate and freezing-channel arrays (channel -1 = stalled).
func (n *Network) fill(src []*Flow) ([]*Flow, []float64, []int32) {
	ep := n.epoch
	// Gather live flows (admission order) and stamp the channels they
	// touch with fresh scratch. A group entry counts with its live
	// multiplicity: each member crosses its channels once.
	pf := n.passFlows[:0]
	pr := n.passRate[:0]
	pb := n.passBneck[:0]
	off := n.passOff[:0]
	pp := n.passPath[:0]
	for _, f := range src {
		if f.finished {
			continue
		}
		off = append(off, int32(len(pp)))
		pf = append(pf, f)
		pr = append(pr, -1) // unassigned marker
		pb = append(pb, -1)
		m := int32(f.mult)
		for _, id := range f.pathIDs {
			if n.chEpoch[id] != ep {
				n.chEpoch[id] = ep
				n.chResidual[id] = n.channels[id].capacity
				n.chUnassigned[id] = 0
			}
			n.chUnassigned[id] += m
			pp = append(pp, id)
		}
	}
	off = append(off, int32(len(pp)))
	work := n.passWork[:0]
	for i := range pf {
		work = append(work, int32(i))
	}
	for len(work) > 0 {
		// Find the bottleneck: the channel with the smallest fair share.
		// Deterministic order: unassigned flows (admission order), then
		// their paths hop by hop. A channel's share is constant within
		// the scan, and a repeated comparison of an identical value
		// cannot change a strict-< winner — group members scanning m
		// times in a row and popular channels crossed by many flows
		// both reduce to the first occurrence — so each channel is
		// examined once per round, at its first appearance.
		n.roundSeq++
		round := n.roundSeq
		bneck := int32(-1)
		share := math.Inf(1)
		for _, i := range work {
			for _, id := range pp[off[i]:off[i+1]] {
				if n.chRound[id] == round {
					continue
				}
				n.chRound[id] = round
				if n.chUnassigned[id] == 0 {
					continue
				}
				s := n.chResidual[id] / float64(n.chUnassigned[id])
				if s < share {
					share = s
					bneck = id
				}
			}
		}
		if bneck < 0 {
			break
		}
		// Every unassigned flow crossing the bottleneck gets the share;
		// the rest stay on the worklist, order preserved. A group entry
		// charges its channels once per member by repeated subtraction —
		// residual - m*share would round differently; m sequential
		// clamped subtractions are bitwise what m member entries do.
		rest := work[:0]
		for _, i := range work {
			crosses := false
			for _, id := range pp[off[i]:off[i+1]] {
				if id == bneck {
					crosses = true
					break
				}
			}
			if !crosses {
				rest = append(rest, i)
				continue
			}
			pr[i] = share
			pb[i] = bneck
			if m := pf[i].mult; m == 1 {
				for _, id := range pp[off[i]:off[i+1]] {
					n.chResidual[id] -= share
					if n.chResidual[id] < 0 {
						n.chResidual[id] = 0
					}
					n.chUnassigned[id]--
				}
			} else {
				for _, id := range pp[off[i]:off[i+1]] {
					r := n.chResidual[id]
					for j := 0; j < m; j++ {
						r -= share
						if r < 0 {
							r = 0
						}
					}
					n.chResidual[id] = r
					n.chUnassigned[id] -= int32(m)
				}
			}
		}
		work = rest
	}
	for i, f := range pf {
		if pr[i] < 0 {
			pr[i] = 0 // stalled: no residual capacity anywhere on its path
		}
		f.rate = pr[i]
	}
	n.passFlows = pf
	n.passRate = pr
	n.passBneck = pb
	n.passOff = off
	n.passPath = pp
	n.passWork = work[:0]
	return pf, pr, pb
}

// passDone closes the trigger window: every pass — full or
// fast-forwarded — consumes the accumulated trigger mask, the
// completed-path list, and the pending-entrant list.
func (n *Network) passDone() {
	n.trigMask = 0
	n.ffPaths = n.ffPaths[:0]
	for _, f := range n.instAdmits {
		f.pending = false
	}
	n.instAdmits = n.instAdmits[:0]
	n.joinedLate = false
}

// entrantsDisjoint reports whether every channel crossed by the
// entrants admitted since the last pass carries only those entrants —
// no surviving flow shares a channel with the burst — and no member
// joined an already-rated group. It leaves the burst's channel set in
// n.entrantIDs for ffAdmitPass. entrantCnt is zeroed on the way out,
// so the scratch never needs a bulk clear.
func (n *Network) entrantsDisjoint() bool {
	if n.joinedLate {
		return false
	}
	if len(n.entrantCnt) < len(n.channels) {
		n.entrantCnt = make([]int32, len(n.channels))
	}
	ids := n.entrantIDs[:0]
	for _, f := range n.instAdmits {
		m := int32(f.mult)
		for _, id := range f.pathIDs {
			if n.entrantCnt[id] == 0 {
				ids = append(ids, id)
			}
			n.entrantCnt[id] += m
		}
	}
	ok := true
	for _, id := range ids {
		if n.channels[id].live != int(n.entrantCnt[id]) {
			ok = false
		}
		n.entrantCnt[id] = 0
	}
	n.entrantIDs = ids
	return ok
}

// ffAdmitPass serves a pass whose only rate changes are this instant's
// entrants, admitted onto channels that carry no surviving flow
// (entrantsDisjoint). Max-min filling decomposes over connected
// components: the survivors' component replays the cached allocation
// bitwise — the ffPass argument, extended by the entrant burst sharing
// no channel with it — while the entrant component is filled locally
// from full-capacity residuals, performing float-for-float the
// operations the full pass would perform for exactly those channels.
// Completions in the same window are covered by the ffStable guard,
// as in ffPass.
func (n *Network) ffAdmitPass(now sim.Time) {
	n.passes++
	n.ffPasses++
	n.ffAdmits++
	if len(n.instAdmits) == 1 {
		// Singleton burst — one entry, alone on its channels: filling
		// is a single round whose share is the smallest per-member
		// capacity along the path. Channel scan order and the strict-<
		// winner are exactly fill's; capacity/float64(m) is the very
		// division fill performs on freshly stamped scratch.
		f := n.instAdmits[0]
		m := float64(f.mult)
		share := math.Inf(1)
		bneck := int32(-1)
		for _, id := range f.pathIDs {
			if s := n.channels[id].capacity / m; s < share {
				share = s
				bneck = id
			}
		}
		f.rate = share
		n.freezeEntrant(f, share, bneck)
	} else {
		n.epoch++
		pf, pr, pb := n.fill(n.instAdmits)
		// The entrants extend the last full pass's freeze bookkeeping
		// incrementally; survivors' entries are untouched.
		for i, f := range pf {
			n.freezeEntrant(f, pr[i], pb[i])
		}
	}
	n.ffEpoch++
	ep := n.ffEpoch
	for _, id := range n.ffPaths {
		n.chTouched[id] = ep
	}
	for _, id := range n.entrantIDs {
		n.chTouched[id] = ep
	}
	n.ffFold(now, ep)
}

// freezeEntrant extends the last full pass's freeze bookkeeping with
// one rated entrant (rate <= 0 means stalled, as in the full pass).
func (n *Network) freezeEntrant(f *Flow, rate float64, bneck int32) {
	if rate <= 0 {
		n.stalled++
		f.bneck = -1
		return
	}
	f.bneck = bneck
	if n.frozenCount[bneck] == 0 {
		n.frozenList = append(n.frozenList, bneck)
	}
	n.frozenCount[bneck]++
}

// channelRate sums the live flow rates crossing a channel, walking the
// active list in admission order — the bitwise-pinned fold order. A
// group entry contributes per member by repeated addition (rate*m
// would round differently from m member entries summing in sequence).
func channelRate(c *Channel) float64 {
	rate := 0.0
	for _, f := range c.active {
		if f.finished || f.rate <= 0 {
			continue
		}
		if f.mult == 1 {
			rate += f.rate
		} else {
			for j := 0; j < f.mult; j++ {
				rate += f.rate
			}
		}
	}
	return rate
}

// foldActive is the utilization fold over the maintained non-idle
// channel list. A channel leaves the list exactly when the full scan's
// skip condition first holds for it (no live flows, zero folded rate);
// it re-enters on the next admission that crosses it. Idle-at-entry
// channels are dropped without accounting — the same no-op the full
// scan's skip is.
func (n *Network) foldActive(now sim.Time) {
	keep := n.activeCh[:0]
	for _, c := range n.activeCh {
		if c.live == 0 && c.currentRate == 0 {
			c.inActive = false
			continue
		}
		c.account(now, channelRate(c))
		if c.live == 0 && c.currentRate == 0 {
			c.inActive = false
			continue
		}
		keep = append(keep, c)
	}
	for i := len(keep); i < len(n.activeCh); i++ {
		n.activeCh[i] = nil
	}
	n.activeCh = keep
}

// ffStable reports whether no surviving entry was frozen on any
// channel of the paths completed since the last pass. Combined with
// completion-only triggers and no stalled entries, this proves every
// surviving filling round replays bitwise: completed flows never
// crossed a surviving round's bottleneck (their shares were never
// subtracted there and their members never counted there), so each
// surviving share's dividend and divisor are unchanged.
func (n *Network) ffStable() bool {
	for _, id := range n.ffPaths {
		if n.frozenCount[id] != 0 {
			return false
		}
	}
	return true
}

// ffPass is the steady-state fast-forward: the allocation is provably
// the last full pass's, so only the utilization fold runs. Channels
// untouched by the departed flows keep their cached folded rate — a
// re-sum would add the identical float64 summands in the identical
// order — and channels on the departed paths are re-summed from their
// active lists.
func (n *Network) ffPass(now sim.Time) {
	n.passes++
	n.ffPasses++
	n.ffEpoch++
	ep := n.ffEpoch
	for _, id := range n.ffPaths {
		n.chTouched[id] = ep
	}
	n.ffFold(now, ep)
}

// ffFold is the fast-forward utilization fold: channels stamped with
// the current touch epoch re-sum their active lists; the rest keep
// their cached folded rate (a re-sum would add the identical float64
// summands in the identical order).
func (n *Network) ffFold(now sim.Time, ep uint64) {
	keep := n.activeCh[:0]
	for _, c := range n.activeCh {
		if c.live == 0 && c.currentRate == 0 {
			c.inActive = false
			continue
		}
		rate := c.currentRate
		if n.chTouched[c.id] == ep {
			rate = channelRate(c)
		}
		c.account(now, rate)
		if c.live == 0 && c.currentRate == 0 {
			c.inActive = false
			continue
		}
		keep = append(keep, c)
	}
	for i := len(keep); i < len(n.activeCh); i++ {
		n.activeCh[i] = nil
	}
	n.activeCh = keep
}

// scheduleCompletions settles every live flow's completion deadline
// from the rates of the last pass and attaches the tie-break ranks
// reserved by refreshCompletions, walking flows in admission order so
// rank r(i) = rankBase + i — the exact sequence the eager re-create
// consumed at the instant's last trigger. It runs once per dirty
// instant, at instant end, and consumes no fresh sequence numbers
// (AtRanked/PlaceRanked only), which is what keeps the SeqMark valid
// across pure completion cascades. A flow whose deadline did not move
// is counted as skipped (its event is still re-ranked in place); a
// stalled flow's event is tombstoned where it sits and revived by the
// flush after the trigger that un-stalls it.
func (n *Network) scheduleCompletions(now sim.Time) {
	rank := n.rankBase
	floor := farFuture
	for _, f := range n.flows {
		if f.finished {
			continue
		}
		r := rank
		rank += uint64(f.mult) // a group entry owns one rank per member
		if f.rate <= 0 {
			if f.done != nil && !f.done.Cancelled() {
				n.eng.Cancel(f.done)
			}
			continue // revived by the flush after the next change
		}
		secs := f.remaining / f.rate
		target := now + sim.Time(math.Ceil(secs*1e9))
		if target < floor {
			floor = target
		}
		if f.done == nil {
			// Newly admitted this instant: materialize the event directly
			// at its deadline with its reserved rank.
			ff := f
			f.done = n.eng.AtRanked(target, r, func() { n.complete(ff) })
			f.doneRank = r
			n.rescheduled += uint64(f.mult)
			continue
		}
		if !f.done.Cancelled() && f.done.Time() == target {
			n.skipped += uint64(f.mult)
		} else {
			n.rescheduled += uint64(f.mult)
		}
		n.eng.PlaceRanked(f.done, target, r)
		f.doneRank = r
	}
	n.dueFloor = floor
}

// complete handles the entry's completion event. For a plain flow it
// completes the one member; for an aggregated group it is the carrier:
// the first live member completes immediately, and the rest fan out as
// completion events at the consecutive reserved ranks doneRank+1.. —
// exactly the positions the unaggregated members' events held, with
// nothing able to interleave between consecutive ranks.
//
// The fan-out is conditional on the settle leaving the representative's
// remaining at exactly zero. When rate*dt lands short by float dust,
// the unaggregated world parks the not-yet-fired sibling events
// (refreshCompletions' due-instant walk sees remaining != 0) and the
// flush re-places them one deadline tick later — so the group must do
// the same: no echoes, and the entry (done == nil, mult counting the
// survivors) gets a fresh carrier from the next flush at the dust
// deadline, resuming from doneBase. A member's own onDone may also
// force a pass mid-fan-out (exactly as it could between unaggregated
// completions); the partially-drained entry represents that correctly.
func (n *Network) complete(f *Flow) {
	n.eng.Recycle(f.done)
	f.done = nil
	base := f.doneBase
	f.doneBase++
	rank := f.doneRank
	n.completeMember(f, base)
	if f.mult > 0 && f.remaining == 0 {
		now := n.eng.Now()
		k := f.mult
		for j := 1; j <= k; j++ {
			idx := base + j
			n.eng.AtRanked(now, rank+uint64(j), func() { n.completeMember(f, idx) })
		}
		f.doneBase += k
	}
}

// completeMember retires one member of an entry — the whole entry when
// it is a plain flow. j indexes the member's callback in f.dones. The
// operation sequence per member is exactly the historical complete()'s,
// so counters, settle points, rank refreshes, and onDone ordering are
// byte-identical to the unaggregated schedule.
func (n *Network) completeMember(f *Flow, j int) {
	now := n.eng.Now()
	n.requests++
	n.settle(now)
	n.liveFlows--
	f.mult--
	for _, c := range f.path {
		c.bytesCarried += f.size
		c.live--
	}
	if n.fastForward {
		// The member's departure invalidates cached allocations along its
		// path unless no survivor was frozen there; record the path for
		// the skip check regardless of whether the entry is drained.
		n.ffPaths = append(n.ffPaths, f.pathIDs...)
	}
	n.trigMask |= trigComplete
	if f.mult == 0 {
		if n.groupObs != nil && len(f.dones) > 1 {
			n.groupObs(len(f.dones))
		}
		f.remaining = 0
		f.finished = true
		f.finish = now
		if f.bneck >= 0 {
			n.frozenCount[f.bneck]--
			f.bneck = -1
		}
		// Leave the active lists by tombstone: iteration skips finished
		// flows, and lists compact once tombstones reach half their length.
		n.deadFlows++
		for _, c := range f.path {
			c.dead++
			if c.dead >= listCompactMin && c.dead*2 > len(c.active) {
				c.active = n.compactList(c.active)
				c.dead = 0
			}
		}
		if n.deadFlows >= listCompactMin && n.deadFlows*2 > len(n.flows) {
			n.flows = n.compactList(n.flows)
			n.deadFlows = 0
		}
	}
	n.refreshCompletions(now)
	n.markDirty()
	var done func()
	if len(f.dones) > 0 {
		done = f.dones[j]
		f.dones[j] = nil
	} else {
		done = f.onDone
	}
	if done != nil {
		done()
	}
}

// compactList removes finished flows from a list in place, preserving
// admission order, and drops each removed tombstone's list reference —
// the point at which an ephemeral flow with no remaining references is
// recycled.
func (n *Network) compactList(s []*Flow) []*Flow {
	live := s[:0]
	for _, f := range s {
		if f.finished {
			f.listRefs--
			if f.listRefs == 0 && f.ephemeral {
				n.recycleFlow(f)
			}
			continue
		}
		live = append(live, f)
	}
	for i := len(live); i < len(s); i++ {
		s[i] = nil
	}
	return live
}

func (n *Network) newFlow() *Flow {
	if k := len(n.flowPool); k > 0 {
		f := n.flowPool[k-1]
		n.flowPool[k-1] = nil
		n.flowPool = n.flowPool[:k-1]
		ids := f.pathIDs[:0] // keep the path-id buffer across recycles
		dones := f.dones[:0] // likewise the member-onDone buffer
		*f = Flow{}
		f.pathIDs = ids
		f.dones = dones
		return f
	}
	return &Flow{}
}

func (n *Network) recycleFlow(f *Flow) {
	if len(n.flowPool) < maxFlowPool {
		n.flowPool = append(n.flowPool, f)
	}
}

// SortChannels orders channels by name; used by diagnostics that need a
// stable listing out of map-keyed aggregations.
func SortChannels(cs []*Channel) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
}

// SetLinkCapacity changes a link's per-direction capacities at the
// current virtual time — a degraded lane, a throttled switch port, a
// noisy multi-tenant neighbor. In-flight flows are settled at their old
// rates first, then every allocation is recomputed. This is what makes
// the paper's dynamic re-profiling observable: conditions genuinely
// change under a running workload.
func (n *Network) SetLinkCapacity(l *Link, fwdCap, revCap float64) {
	if fwdCap <= 0 || revCap <= 0 {
		panic(fmt.Sprintf("fabric: link %q capacity change to non-positive", l.name))
	}
	now := n.eng.Now()
	n.requests++
	n.settle(now)
	l.fwd.account(now, l.fwd.currentRate)
	l.rev.account(now, l.rev.currentRate)
	l.fwd.capacity = fwdCap
	l.rev.capacity = revCap
	n.trigMask |= trigCapacity
	n.refreshCompletions(now)
	n.markDirty()
}
