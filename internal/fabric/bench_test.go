package fabric

import (
	"testing"

	"coarse/internal/sim"
)

// The fabric microbenchmarks model the three hot-path shapes the
// training simulations exercise hardest, so BENCH_fabric.json tracks
// exactly the costs the quick suite pays:
//
//   - incast: many same-instant flows onto one bottleneck channel (an
//     all-reduce reduce step, a parameter-server pull storm);
//   - all-to-all: every endpoint pair crossing a shared switch, the
//     collective traffic pattern with the largest reshare fan-out;
//   - capacity flap: SetLinkCapacity storms under long-lived flows,
//     the dynamic re-profiling path.
//
// Each iteration builds a fresh engine+network and runs to completion,
// so ns/op covers admission, every reshare, and completion handling.

// BenchmarkFabricIncast256 admits 256 equal flows at t=0 onto a single
// bottleneck channel and runs to completion. Equal sizes mean all
// admissions land at one instant and all completions land at another —
// the pattern reshare coalescing targets.
func BenchmarkFabricIncast256(b *testing.B) {
	benchIncast(b, 256, false)
}

// BenchmarkFabricIncast256Staggered staggers the 256 sizes so every
// completion lands at its own instant, forcing a full reshare per
// completion: the O(F^2) worst case.
func BenchmarkFabricIncast256Staggered(b *testing.B) {
	benchIncast(b, 256, true)
}

func BenchmarkFabricIncast1024(b *testing.B) {
	benchIncast(b, 1024, false)
}

func benchIncast(b *testing.B, n int, staggered bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		net := NewNetwork(eng)
		l := net.NewLink("bottleneck", 16*gib, 16*gib, 0)
		completed := 0
		for j := 0; j < n; j++ {
			size := float64(4 * mib)
			if staggered {
				size += float64(j) * 64 * 1024
			}
			net.StartFlow([]*Channel{l.Fwd()}, size, func() { completed++ })
		}
		eng.Run()
		if completed != n {
			b.Fatalf("completed %d of %d flows", completed, n)
		}
	}
}

// BenchmarkFabricAllToAll16 runs a 16-endpoint all-to-all across a
// shared switch: every ordered pair sends one flow over its source
// uplink and destination downlink, so every reshare walks long shared
// paths.
func BenchmarkFabricAllToAll16(b *testing.B) {
	const n = 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		net := NewNetwork(eng)
		links := make([]*Link, n)
		for j := range links {
			links[j] = net.NewLink("edge", 12*gib, 12*gib, 0)
		}
		completed := 0
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				path := []*Channel{links[s].Fwd(), links[d].Rev()}
				net.StartFlow(path, float64((1+(s+d)%7)*mib), func() { completed++ })
			}
		}
		eng.Run()
		if completed != n*(n-1) {
			b.Fatalf("completed %d of %d flows", completed, n*(n-1))
		}
	}
}

// BenchmarkFabricCapacityFlap keeps 64 long flows alive across a
// two-hop topology while the shared trunk's capacity flaps 256 times:
// every flap settles all flows and reshares the whole network.
func BenchmarkFabricCapacityFlap(b *testing.B) {
	const flows = 64
	const flaps = 256
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		net := NewNetwork(eng)
		trunk := net.NewLink("trunk", 32*gib, 32*gib, 0)
		edges := make([]*Link, flows)
		for j := range edges {
			edges[j] = net.NewLink("edge", 2*gib, 2*gib, 0)
		}
		completed := 0
		for j := 0; j < flows; j++ {
			path := []*Channel{edges[j].Fwd(), trunk.Fwd()}
			net.StartFlow(path, float64(1*gib), func() { completed++ })
		}
		for k := 0; k < flaps; k++ {
			hi := 24 + k%16
			eng.Schedule(sim.Time(1+k)*1_000_000, func() {
				net.SetLinkCapacity(trunk, float64(hi)*gib, float64(hi)*gib)
			})
		}
		eng.Run()
		if completed != flows {
			b.Fatalf("completed %d of %d flows", completed, flows)
		}
	}
}
