module coarse

go 1.22
