package sim

import "math/bits"

// wheelQueue is a hierarchical timing wheel (calendar queue): four
// levels of 256 slots each, level-l slots 2^(10+8l) ns wide, so the
// wheels span ~73 virtual minutes ahead of the dispatch horizon before
// spilling into an unbounded overflow bucket. Far-future events (the
// fabric parks completion deadlines at a sentinel far beyond any real
// deadline) live in the overflow bucket at O(1) either way.
//
// Events are filed by absolute slot index ((t >> shift) & 255) at the
// shallowest level whose 256-slot window, anchored at the dispatch
// horizon, contains their deadline. Each slot is an unsorted bucket
// that is sorted lazily — descending by (time, seq), so the minimum is
// popped from the tail in O(1) — only when the horizon reaches it.
// Cancel stays a lazy tombstone exactly as in the heap queue; Compact
// filters buckets in place, which preserves relative order and thus
// sortedness.
//
// The horizon (cur) trails the global minimum event time: it advances
// on pop, and a cascade refiles a level-l bucket into level l-1 when
// the horizon enters it. The only way cur can overtake a *future*
// push is an overflow rebase that jumped to a parked far-future
// minimum; events pushed behind the horizon after that land in the
// dedicated past bucket, which peek always serves first, and the
// horizon rebases back down as soon as the wheels drain. Every path
// preserves the one invariant dispatch depends on: Pop always yields
// the global (time, seq) minimum.
type wheelQueue struct {
	cur      Time             // dispatch horizon; wheel events never precede it
	n        int              // queued events, tombstones included
	wcnt     [wheelLevels]int // per-level populations, to skip empty levels
	levels   [wheelLevels][wheelSlots]wheelBucket
	occ      [wheelLevels][wheelSlots / 64]uint64 // nonempty-slot bitmaps
	overflow wheelBucket                          // beyond the outermost window
	past     wheelBucket                          // behind the horizon (see above)

	// memo caches the bucket scanForMin last returned. It stays valid
	// across pops while nonempty (removing the minimum leaves the
	// bucket the minimum's home) and is dropped on any insert, move,
	// or compaction.
	memo *wheelBucket
}

const (
	wheelLevels    = 4
	wheelSlotBits  = 8
	wheelSlots     = 1 << wheelSlotBits
	wheelGranShift = 10 // level-0 slot width: 1024 ns

	// Sentinel slot codes stored in Event.slot for the two special
	// buckets; in-wheel codes are level<<8 | slot, all >= 0.
	wheelSlotOverflow int32 = -1
	wheelSlotPast     int32 = -2
)

func newWheelQueue() *wheelQueue { return &wheelQueue{} }

// eventBefore reports whether a dispatches before b.
func eventBefore(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// wheelBucket is one slot's event list, sorted descending by
// (time, seq) when dirty is false, so the minimum sits at the tail.
type wheelBucket struct {
	evs   []*Event
	dirty bool
}

func (b *wheelBucket) add(e *Event, slot int32) {
	e.slot = slot
	e.index = len(b.evs)
	b.evs = append(b.evs, e)
	if n := len(b.evs); n > 1 && !b.dirty && !eventBefore(e, b.evs[n-2]) {
		b.dirty = true
	}
}

// remove unlinks a queued event from the bucket by swap-removal.
func (b *wheelBucket) remove(e *Event) {
	n := len(b.evs)
	last := b.evs[n-1]
	if last != e {
		b.evs[e.index] = last
		last.index = e.index
		if n > 2 {
			b.dirty = true
		}
	}
	b.evs[n-1] = nil
	b.evs = b.evs[:n-1]
	e.index = -1
}

func (b *wheelBucket) ensureSorted() {
	if !b.dirty {
		return
	}
	sortEventsDesc(b.evs)
	for i, e := range b.evs {
		e.index = i
	}
	b.dirty = false
}

// sortEventsDesc sorts descending by (time, seq) with inlined
// comparisons: bucket sorts are the wheel's main per-dispatch cost, and
// sort.Slice's closure-per-compare overhead roughly doubles it. Keys
// are unique (ranks are never duplicated while queued), so instability
// cannot reorder equals.
func sortEventsDesc(evs []*Event) {
	if len(evs) <= 24 {
		insertionSortEventsDesc(evs)
		return
	}
	// Median-of-three quicksort, recursing on the smaller side.
	for len(evs) > 24 {
		a, m, z := 0, len(evs)/2, len(evs)-1
		if eventBefore(evs[a], evs[m]) {
			evs[a], evs[m] = evs[m], evs[a]
		}
		if eventBefore(evs[a], evs[z]) {
			evs[a], evs[z] = evs[z], evs[a]
		}
		if eventBefore(evs[m], evs[z]) {
			evs[m], evs[z] = evs[z], evs[m]
		}
		pivot := evs[m]
		i, j := 0, len(evs)-1
		for i <= j {
			for eventBefore(pivot, evs[i]) {
				i++
			}
			for eventBefore(evs[j], pivot) {
				j--
			}
			if i <= j {
				evs[i], evs[j] = evs[j], evs[i]
				i++
				j--
			}
		}
		if j < len(evs)-i {
			sortEventsDesc(evs[:j+1])
			evs = evs[i:]
		} else {
			sortEventsDesc(evs[i:])
			evs = evs[:j+1]
		}
	}
	insertionSortEventsDesc(evs)
}

func insertionSortEventsDesc(evs []*Event) {
	for i := 1; i < len(evs); i++ {
		e := evs[i]
		j := i - 1
		for j >= 0 && eventBefore(evs[j], e) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = e
	}
}

// filter drops tombstones in place. Relative order of survivors is
// unchanged, so a sorted bucket stays sorted.
func (b *wheelBucket) filter() int {
	live := b.evs[:0]
	for _, e := range b.evs {
		if e.cancel {
			e.index = -1
			continue
		}
		e.index = len(live)
		live = append(live, e)
	}
	removed := len(b.evs) - len(live)
	for i := len(live); i < len(b.evs); i++ {
		b.evs[i] = nil
	}
	b.evs = live
	return removed
}

func (w *wheelQueue) occSet(l, k int)   { w.occ[l][k>>6] |= 1 << (uint(k) & 63) }
func (w *wheelQueue) occClear(l, k int) { w.occ[l][k>>6] &^= 1 << (uint(k) & 63) }

// slotFor files a deadline relative to the current horizon.
func (w *wheelQueue) slotFor(t Time) int32 {
	if t < w.cur {
		return wheelSlotPast
	}
	ut, uc := uint64(t), uint64(w.cur)
	for l := 0; l < wheelLevels; l++ {
		shift := uint(wheelGranShift + l*wheelSlotBits)
		if ut>>shift-uc>>shift < wheelSlots {
			return int32(l)<<wheelSlotBits | int32(ut>>shift&(wheelSlots-1))
		}
	}
	return wheelSlotOverflow
}

func (w *wheelQueue) bucketOf(slot int32) *wheelBucket {
	switch slot {
	case wheelSlotOverflow:
		return &w.overflow
	case wheelSlotPast:
		return &w.past
	}
	return &w.levels[slot>>wheelSlotBits][slot&(wheelSlots-1)]
}

// place files an event without touching the queue's count.
func (w *wheelQueue) place(e *Event) {
	s := w.slotFor(e.at)
	if s >= 0 {
		l, k := int(s)>>wheelSlotBits, int(s)&(wheelSlots-1)
		b := &w.levels[l][k]
		if len(b.evs) == 0 {
			w.occSet(l, k)
		}
		b.add(e, s)
		w.wcnt[l]++
		return
	}
	w.bucketOf(s).add(e, s)
}

// unlink removes a queued event from whatever bucket holds it.
func (w *wheelQueue) unlink(e *Event) {
	b := w.bucketOf(e.slot)
	b.remove(e)
	if s := e.slot; s >= 0 {
		w.wcnt[s>>wheelSlotBits]--
		if len(b.evs) == 0 {
			w.occClear(int(s)>>wheelSlotBits, int(s)&(wheelSlots-1))
		}
	}
}

// nextOccupied scans level l's occupancy bitmap circularly starting at
// slot s (inclusive). Circular order from the horizon's own slot is
// absolute time order, so the first hit is the level's earliest slot.
func (w *wheelQueue) nextOccupied(l, s int) (int, bool) {
	occ := &w.occ[l]
	wi := s >> 6
	if b := occ[wi] & (^uint64(0) << (uint(s) & 63)); b != 0 {
		return wi<<6 + bits.TrailingZeros64(b), true
	}
	for i := 1; i < wheelSlots/64; i++ {
		j := (wi + i) & (wheelSlots/64 - 1)
		if b := occ[j]; b != 0 {
			return j<<6 + bits.TrailingZeros64(b), true
		}
	}
	if b := occ[wi] &^ (^uint64(0) << (uint(s) & 63)); b != 0 {
		return wi<<6 + bits.TrailingZeros64(b), true
	}
	return 0, false
}

// minBucket returns the bucket holding the global minimum event,
// consulting the memo before scanning.
func (w *wheelQueue) minBucket() *wheelBucket {
	if w.memo != nil && len(w.memo.evs) > 0 {
		return w.memo
	}
	w.memo = w.scanForMin()
	return w.memo
}

// scanForMin locates the bucket holding the global minimum event,
// cascading outer-level buckets inward and rebasing the horizon as
// needed. Returns nil when the queue is empty.
func (w *wheelQueue) scanForMin() *wheelBucket {
	if w.n == 0 {
		return nil
	}
	if len(w.past.evs) > 0 {
		// Past events precede the horizon and hence every wheel or
		// overflow event. If the wheels are empty the horizon is free
		// to rebase down so the queue leaves the degenerate past-only
		// regime (entered via a far-future overflow rebase).
		if w.n != len(w.past.evs)+len(w.overflow.evs) {
			return &w.past
		}
		w.past.ensureSorted()
		w.cur = w.past.evs[len(w.past.evs)-1].at
		evs := w.past.evs
		w.past.evs = nil
		w.past.dirty = false
		for _, e := range evs {
			w.place(e)
		}
	}
scan:
	for {
		// Find the occupied slot with the earliest start time across
		// all levels. Slot starts within a level are circular-order
		// monotone from the horizon's own slot, but an outer-level
		// bucket placed long ago can by now overlap an inner level's
		// window, so levels must be compared by slot start — on ties
		// the outer level wins so its wider bucket cascades first.
		bestL, bestK := -1, 0
		var bestBase Time
		for l := 0; l < wheelLevels; l++ {
			if w.wcnt[l] == 0 {
				continue
			}
			shift := uint(wheelGranShift + l*wheelSlotBits)
			s := int(uint64(w.cur)>>shift) & (wheelSlots - 1)
			k, ok := w.nextOccupied(l, s)
			if !ok {
				continue
			}
			p := (k - s + wheelSlots) & (wheelSlots - 1)
			base := Time((uint64(w.cur)>>shift + uint64(p)) << shift)
			if bestL < 0 || base <= bestBase {
				bestL, bestK, bestBase = l, k, base
			}
		}
		if bestL == 0 {
			return &w.levels[0][bestK]
		}
		if bestL > 0 {
			// Cascade: the earliest slot is an outer-level bucket.
			// Advance the horizon to the bucket's start and refile its
			// contents at least one level down.
			if bestBase > w.cur {
				w.cur = bestBase
			}
			b := &w.levels[bestL][bestK]
			evs := b.evs
			b.evs = nil
			b.dirty = false
			w.occClear(bestL, bestK)
			w.wcnt[bestL] -= len(evs)
			for _, e := range evs {
				w.place(e)
			}
			// The cascade refiles strictly inward, so the source
			// bucket received nothing back: keep its capacity.
			b.evs = evs[:0]
			continue scan
		}
		if len(w.overflow.evs) == 0 {
			return nil
		}
		// Wheels empty: rebase the horizon onto the overflow minimum
		// and refile; events still beyond the outermost window
		// re-enter overflow in order, keeping it sorted.
		w.overflow.ensureSorted()
		minAt := w.overflow.evs[len(w.overflow.evs)-1].at
		if minAt > w.cur {
			w.cur = minAt
		}
		evs := w.overflow.evs
		w.overflow.evs = nil
		w.overflow.dirty = false
		for _, e := range evs {
			w.place(e)
		}
	}
}

func (w *wheelQueue) Push(e *Event) {
	w.place(e)
	w.n++
	w.memo = nil
}

func (w *wheelQueue) Peek() *Event {
	b := w.minBucket()
	if b == nil {
		return nil
	}
	b.ensureSorted()
	return b.evs[len(b.evs)-1]
}

func (w *wheelQueue) Pop() *Event {
	b := w.minBucket()
	if b == nil {
		return nil
	}
	b.ensureSorted()
	e := b.evs[len(b.evs)-1]
	w.unlink(e)
	w.n--
	if e.at > w.cur {
		w.cur = e.at
	}
	if len(b.evs) == 0 {
		w.memo = nil
	}
	return e
}

func (w *wheelQueue) Fix(e *Event) {
	w.unlink(e)
	w.place(e)
	w.memo = nil
}

func (w *wheelQueue) Len() int { return w.n }

func (w *wheelQueue) Compact() int {
	removed := w.past.filter() + w.overflow.filter()
	for l := 0; l < wheelLevels; l++ {
		for wi, word := range w.occ[l] {
			for word != 0 {
				k := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				b := &w.levels[l][k]
				dropped := b.filter()
				removed += dropped
				w.wcnt[l] -= dropped
				if len(b.evs) == 0 {
					w.occClear(l, k)
				}
			}
		}
	}
	w.n -= removed
	w.memo = nil
	return removed
}
