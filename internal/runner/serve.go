package runner

import (
	"fmt"
	"hash/fnv"

	"coarse/internal/metrics"
	"coarse/internal/model"
	"coarse/internal/serve"
	"coarse/internal/sim"
	"coarse/internal/telemetry"
	"coarse/internal/topology"
)

// ServeSpec describes one independent serving-simulation cell — the
// inference counterpart of Spec, executed on the same pool with the
// same memoization and determinism guarantees.
type ServeSpec struct {
	// ID uniquely labels the cell; it participates in seed derivation.
	ID string
	// Key memoizes the Result like Spec.Key; experiment families prefix
	// serve keys with "serve/" so they can never alias a training key in
	// the shared cache. Leave empty for chaos cells.
	Key string

	Topology topology.Spec
	Model    *model.Model
	Workload serve.Workload

	// Options adjusts the serve.Config after defaults apply (KV
	// placement, prefetch, pool split, SLOs, chaos...). It runs inside
	// the cell, so it must not touch shared mutable state.
	Options func(*serve.Config)

	// Seed overrides the derived per-spec seed when non-zero.
	Seed int64

	// Telemetry mirrors Spec.Telemetry: build a registry, attach the
	// dump to the Result, bypass the cache.
	Telemetry           bool
	TelemetryPeriod     sim.Time
	TelemetryMaxSamples int
}

// DerivedSeed mirrors Spec.DerivedSeed over the serving identity
// fields: the workload shape joins the hash because it changes the
// generated trace the way Batch/Iterations change a training run.
func (s ServeSpec) DerivedSeed() int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	h := fnv.New64a()
	mname := ""
	if s.Model != nil {
		mname = s.Model.Name
	}
	fmt.Fprintf(h, "%s|%s|%s|%s|%g|%d", s.ID, s.Topology.Label, mname,
		s.Workload.Arrival, s.Workload.RatePerSec, s.Workload.Requests)
	seed := int64(h.Sum64() >> 1)
	if seed == 0 {
		seed = 1
	}
	return seed
}

// observerSpec is the minimal training-shaped Spec handed to Observer
// hooks for serving cells: observers predate serving and key off the
// ID, which is all a serving cell shares with the training shape.
func (s ServeSpec) observerSpec() Spec {
	return Spec{ID: s.ID, Topology: s.Topology, Model: s.Model, Seed: s.Seed}
}

// Serve runs every serving spec and returns results aligned by index,
// byte-identical regardless of Parallel — same contract as Train.
func (p *Pool) Serve(specs []ServeSpec) []*Result {
	var obs Observer
	if p != nil {
		obs = p.Observer
	}
	return Map(p.workers(), len(specs), func(i int) *Result {
		if obs != nil {
			obs.CellStarted(specs[i].observerSpec())
		}
		res := runServeCached(specs[i])
		if obs != nil {
			obs.CellFinished(specs[i].observerSpec(), res)
		}
		return res
	})
}

func runServeCached(s ServeSpec) *Result {
	if s.Key == "" || s.Telemetry {
		return RunServe(s)
	}
	if v, ok := cache.Load(s.Key); ok {
		return v.(*Result)
	}
	res := RunServe(s)
	if v, loaded := cache.LoadOrStore(s.Key, res); loaded {
		return v.(*Result)
	}
	return res
}

// RunServe executes one serving cell serially, bypassing the cache,
// with the same panic capture as Run.
func RunServe(s ServeSpec) (res *Result) {
	res = &Result{ID: s.ID, Seed: s.DerivedSeed()}
	defer func() {
		if v := recover(); v != nil {
			res.Err = fmt.Sprintf("panic: %v", v)
			res.Serve = nil
		}
	}()
	cfg := serve.DefaultConfig(s.Topology, s.Model, s.Workload)
	cfg.Seed = res.Seed
	if s.Telemetry {
		cfg.Telemetry = telemetry.NewRegistry()
		cfg.TelemetryPeriod = s.TelemetryPeriod
		cfg.TelemetryMaxSamples = s.TelemetryMaxSamples
	}
	if s.Options != nil {
		s.Options(&cfg)
	}
	sv, err := serve.New(cfg)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	sres, err := sv.Run()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Serve = sres
	if d := sv.TelemetryDump(); d != nil {
		d.SetLabel("id", s.ID)
		d.SetLabel("seed", fmt.Sprint(res.Seed))
		res.Telemetry = d
	}
	return res
}

// serveRecord flattens a serving result into the machine-readable
// record shape coarsebench emits under -json.
func serveRecord(r *Result) metrics.Result {
	rec := metrics.Result{ID: r.ID, Err: r.Err, Extra: r.Extra}
	v := r.Serve
	rec.Labels = map[string]string{
		"workload":  "serve",
		"machine":   v.Machine,
		"model":     v.Model,
		"placement": v.Placement,
		"arrival":   v.Arrival,
	}
	rec.Values = map[string]float64{
		"seed":            float64(r.Seed),
		"workers":         float64(v.Workers),
		"prefill_workers": float64(v.PrefillWorkers),
		"decode_workers":  float64(v.DecodeWorkers),
		"requests":        float64(v.Requests),
		"completed":       float64(v.Completed),
		"offered_rps":     v.OfferedRPS,
		"achieved_rps":    v.AchievedRPS,
		"goodput_rps":     v.GoodputRPS,
		"slo_attainment":  v.SLOAttainment,
		"total_time_s":    v.TotalTime.ToSeconds(),
		"ttft_p50_s":      v.TTFT.P50.ToSeconds(),
		"ttft_p99_s":      v.TTFT.P99.ToSeconds(),
		"ttft_p999_s":     v.TTFT.P999.ToSeconds(),
		"tpot_p50_s":      v.TPOT.P50.ToSeconds(),
		"tpot_p99_s":      v.TPOT.P99.ToSeconds(),
		"tpot_p999_s":     v.TPOT.P999.ToSeconds(),
		"mean_batch":      v.MeanBatch,
		"kv_fabric_b":     float64(v.KVFabricBytes),
		"param_fabric_b":  float64(v.ParamFabricBytes),
		"edge_bus_util":   v.EdgeBusUtil,
		"cci_bus_util":    v.CCIBusUtil,
		"events":          float64(v.Events),
	}
	if v.ChaosFaults > 0 {
		rec.Values["chaos_faults"] = float64(v.ChaosFaults)
		rec.Values["chaos_stall_s"] = v.ChaosStall.ToSeconds()
	}
	return rec
}
