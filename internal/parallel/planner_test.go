package parallel

import (
	"reflect"
	"testing"
)

// gridTopo places workers on a synthetic grid: gpusPerNode consecutive
// workers per node, nodesPerRack nodes per rack — the same shape the
// trainer derives from a generated machine.
func gridTopo(gpusPerNode, nodesPerRack int, rackDevs bool) CommTopo {
	return CommTopo{
		Node:     func(w int) int { return w / gpusPerNode },
		Rack:     func(w int) int { return w / (gpusPerNode * nodesPerRack) },
		RackDevs: rackDevs,
	}
}

func TestChoose(t *testing.T) {
	// 4 GPUs per node, 4 nodes per rack => workers 0-15 rack 0, 16-31
	// rack 1.
	topo := gridTopo(4, 4, true)
	cases := []struct {
		name    string
		members []int
		topo    CommTopo
		want    Alg
	}{
		{"empty", nil, topo, AlgNone},
		{"single", []int{3}, topo, AlgNone},
		{"same node", []int{0, 1, 2, 3}, topo, AlgRing},
		{"same rack", []int{0, 4, 8, 12}, topo, AlgHier},
		{"cross rack with devices", []int{0, 16}, topo, AlgOffload},
		{"cross rack no devices", []int{0, 16}, gridTopo(4, 4, false), AlgHier},
		{"flat ring forced", []int{0, 16}, CommTopo{
			Node: topo.Node, Rack: topo.Rack, RackDevs: true, FlatRing: true,
		}, AlgRing},
		{"flat ring leaves single alone", []int{5}, CommTopo{
			Node: topo.Node, Rack: topo.Rack, FlatRing: true,
		}, AlgNone},
	}
	for _, c := range cases {
		if got := Choose(c.members, c.topo); got != c.want {
			t.Errorf("%s: Choose = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAlgString(t *testing.T) {
	want := map[Alg]string{
		AlgNone:    "none",
		AlgRing:    "ring",
		AlgHier:    "hier",
		AlgOffload: "offload",
	}
	for a, s := range want {
		if got := a.String(); got != s {
			t.Errorf("%v.String() = %q, want %q", int(a), got, s)
		}
	}
	if got := Alg(99).String(); got != "alg(?)" {
		t.Errorf("unknown alg String = %q", got)
	}
}

func TestGroupBy(t *testing.T) {
	members := []int{7, 1, 5, 3, 9}
	got := GroupBy(members, func(w int) int { return w % 2 })
	// All odd: one group, original order preserved.
	if !reflect.DeepEqual(got, [][]int{{7, 1, 5, 3, 9}}) {
		t.Errorf("single-key GroupBy = %v", got)
	}
	got = GroupBy([]int{4, 1, 6, 3, 8}, func(w int) int { return w % 2 })
	// Groups ordered by first appearance (even seen first), members in
	// relative order.
	if !reflect.DeepEqual(got, [][]int{{4, 6, 8}, {1, 3}}) {
		t.Errorf("two-key GroupBy = %v", got)
	}
	if got := GroupBy(nil, func(int) int { return 0 }); len(got) != 0 {
		t.Errorf("empty GroupBy = %v", got)
	}
}
