package fabric

import (
	"testing"

	"coarse/internal/sim"
)

// runFan admits k size-sized flows over path at t=0 — tagged as one fan
// when agg is true — plus one background flow over bgPath, and returns
// every completion time (fan members first, background last) together
// with the bottleneck channel's integrated byte count at drain.
func runFan(t *testing.T, agg bool, k int, size float64, mkPaths func(n *Network) (fan, bg []*Channel)) (fanDone []sim.Time, bgDone sim.Time, bneckBytes float64) {
	t.Helper()
	eng, net := newNet()
	net.EnableFlowAggregation(agg)
	fan, bg := mkPaths(net)
	fanDone = make([]sim.Time, k)
	var tag AggTag
	eng.Schedule(0, func() {
		for i := 0; i < k; i++ {
			i := i
			net.StartEphemeralTagged(&tag, fan, size, func() { fanDone[i] = eng.Now() })
		}
		if bg != nil {
			net.StartEphemeralTagged(nil, bg, size, func() { bgDone = eng.Now() })
		}
	})
	eng.Run()
	net.Flush()
	bneckBytes = fan[0].IntegratedBytes(eng.Now())
	return fanDone, bgDone, bneckBytes
}

// TestAggregatedGroupMatchesIndependentFlows pins the core byte-identity
// claim: a multiplicity-k group must carry exactly the bytes, rates, and
// completion instants of k independently admitted flows — to the last
// bit — both when the fan is alone on its bottleneck and when it shares
// the bottleneck with an untagged bystander.
func TestAggregatedGroupMatchesIndependentFlows(t *testing.T) {
	cases := []struct {
		name string
		mk   func(n *Network) (fan, bg []*Channel)
	}{
		{"fan-only", func(n *Network) ([]*Channel, []*Channel) {
			l := n.NewLink("pcie", 10*gib, 10*gib, 0)
			return []*Channel{l.Fwd()}, nil
		}},
		{"shared-bottleneck", func(n *Network) ([]*Channel, []*Channel) {
			a := n.NewLink("a", 10*gib, 10*gib, 0)
			b := n.NewLink("b", 40*gib, 40*gib, 0)
			return []*Channel{a.Fwd(), b.Fwd()}, []*Channel{a.Fwd()}
		}},
	}
	const k = 7
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			offDone, offBG, offBytes := runFan(t, false, k, 3*gib, tc.mk)
			onDone, onBG, onBytes := runFan(t, true, k, 3*gib, tc.mk)
			for i := range offDone {
				if offDone[i] != onDone[i] {
					t.Errorf("member %d: finish %v aggregated vs %v independent", i, onDone[i], offDone[i])
				}
			}
			if offBG != onBG {
				t.Errorf("bystander finish %v aggregated vs %v independent", onBG, offBG)
			}
			if offBytes != onBytes {
				t.Errorf("bottleneck integrated bytes %v aggregated vs %v independent", onBytes, offBytes)
			}
		})
	}
}
