# Build/verify targets for the coarse repository.
#
# The parallel run harness (internal/runner) is the repo's first
# concurrent code, so `race` is part of `ci` — the full gate every PR
# must keep green.

GO ?= go

.PHONY: all build test race vet bench bench-smoke suite telemetry-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The runner fans simulation cells across goroutines; -race guards the
# "no shared mutable state between cells" invariant.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path performance tracking: run the fabric/sim microbenchmarks
# plus a serial quick-suite timing and rewrite BENCH_fabric.json (the
# committed perf-trajectory record; the hand-pinned "reference" block
# inside it is preserved). Compare against BENCH_fabric.json's previous
# numbers before committing a refresh.
bench:
	$(GO) run ./cmd/benchjson

# CI guard: every microbenchmark must still compile and run. One
# iteration each, no file rewritten, no timing claims.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./internal/fabric ./internal/sim
	$(GO) test -race -bench=. -benchtime=1x -run=^$$ ./internal/fabric

# Regenerate the full evaluation (quick mode) with suite timing on
# stderr; compare `-parallel 1` against the default to verify the
# byte-identical-output guarantee on your machine.
suite:
	$(GO) run ./cmd/coarsebench -quick -timing

# End-to-end observability check: run one telemetry-enabled simulation,
# verify the dump and Perfetto trace are written and byte-stable across
# two runs, and that the inspector reads them back.
telemetry-smoke:
	rm -rf .telemetry-smoke && mkdir -p .telemetry-smoke
	$(GO) run ./cmd/coarsesim -machine v100 -model bert-base -batch 2 -iters 2 \
		-strategy COARSE -telemetry .telemetry-smoke/a.json -trace-out .telemetry-smoke/a.trace
	$(GO) run ./cmd/coarsesim -machine v100 -model bert-base -batch 2 -iters 2 \
		-strategy COARSE -telemetry .telemetry-smoke/b.json -trace-out .telemetry-smoke/b.trace
	cmp .telemetry-smoke/a.json .telemetry-smoke/b.json
	cmp .telemetry-smoke/a.trace .telemetry-smoke/b.trace
	$(GO) run ./cmd/coarsestat .telemetry-smoke/a.json
	rm -rf .telemetry-smoke

ci: build vet test race
