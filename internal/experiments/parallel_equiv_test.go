package experiments

// Parallelism-equivalence property: a declared DP-only layout is the
// SAME code path as the historical unsharded trainer, for every
// synchronization strategy — not approximately, but byte for byte,
// results and telemetry alike. This is the k=1 idiom that lets the
// sharded machinery coexist with the frozen goldens: Layout{DP: n}
// normalizes to the trivial layout, the plan stays nil, and every
// strategy's historical branch runs unchanged.

import (
	"bytes"
	"reflect"
	"testing"

	"coarse/internal/model"
	"coarse/internal/parallel"
	"coarse/internal/telemetry"
	"coarse/internal/topology"
	"coarse/internal/train"
)

// runEquiv runs one small training with telemetry and returns the
// result and serialized dump bytes.
func runEquiv(t *testing.T, lay parallel.Layout, strat string) (*train.Result, []byte) {
	t.Helper()
	m := model.MLP("mlp", 512, 256, 10)
	cfg := train.DefaultConfig(topology.AWSV100(), m, 4, 2)
	cfg.Layout = lay
	cfg.Telemetry = telemetry.NewRegistry()
	tr, err := train.New(cfg, newStrategy(strat))
	if err != nil {
		t.Fatalf("%s/%v: New: %v", strat, lay, err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatalf("%s/%v: Run: %v", strat, lay, err)
	}
	var buf bytes.Buffer
	if err := tr.TelemetryDump().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestDPOnlyLayoutByteIdentity: for all four strategies, the zero
// layout, an explicit Layout{DP: world} and a DP-with-microbatch
// declaration produce identical results and telemetry bytes.
func TestDPOnlyLayoutByteIdentity(t *testing.T) {
	const world = 4 // AWS V100 preset worker count (4 switches x "WM")
	for _, strat := range smokeStrategies {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			base, baseDump := runEquiv(t, parallel.Layout{}, strat)
			if base.Layout != "" {
				t.Fatalf("trivial layout labeled %q, want empty", base.Layout)
			}
			for _, lay := range []parallel.Layout{
				{DP: world},
				{DP: world, Micro: 2},
				{PP: 1, TP: 1, EP: 1},
			} {
				res, dump := runEquiv(t, lay, strat)
				if !reflect.DeepEqual(res, base) {
					t.Errorf("%v diverged from unsharded path:\nbase %+v\ngot  %+v",
						lay, base.RunMetrics, res.RunMetrics)
				}
				if !bytes.Equal(dump, baseDump) {
					t.Errorf("%v changed telemetry bytes (%d vs %d)", lay, len(dump), len(baseDump))
				}
			}
		})
	}
}

// TestNonDividingLayoutRejected: the trainer surfaces layout/world
// mismatches as construction errors, not runtime surprises.
func TestNonDividingLayoutRejected(t *testing.T) {
	m := model.MLP("mlp", 512, 256, 10)
	cfg := train.DefaultConfig(topology.AWSV100(), m, 4, 2)
	cfg.Layout = parallel.Layout{PP: 3} // 8 workers, 3 stages
	if _, err := train.New(cfg, train.NewAllReduce()); err == nil {
		t.Fatal("non-dividing layout accepted")
	}
	cfg.Layout = parallel.Layout{PP: 2}
	cfg.Batch = 3 // not divisible into 2 microbatches
	if _, err := train.New(cfg, train.NewAllReduce()); err == nil {
		t.Fatal("batch not divisible by microbatches accepted")
	}
}
