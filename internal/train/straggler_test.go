package train

import (
	"fmt"
	"testing"

	"coarse/internal/model"
	"coarse/internal/sim"
	"coarse/internal/topology"
	"coarse/internal/trace"
)

func TestComputeJitterSlowsIteration(t *testing.T) {
	run := func(jitter float64) *Result {
		cfg := DefaultConfig(topology.AWSV100(), model.ResNet50(), 16, 3)
		cfg.ComputeJitter = jitter
		res, err := Run(cfg, NewAllReduce())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(0)
	skewed := run(0.3)
	// The iteration is paced by the slowest worker: ~30% slower.
	ratio := skewed.IterTime.ToSeconds() / base.IterTime.ToSeconds()
	if ratio < 1.2 || ratio > 1.45 {
		t.Fatalf("30%% jitter changed iteration time by %.2fx, want ~1.3x", ratio)
	}
}

func TestComputeJitterBlocksFastWorkers(t *testing.T) {
	// With a synchronous strategy, the fast workers' stall grows with
	// jitter — the Section II-B straggler effect.
	cfg := DefaultConfig(topology.AWSV100(), model.ResNet50(), 16, 3)
	cfg.ComputeJitter = 0.3
	res, err := Run(cfg, NewAllReduce())
	if err != nil {
		t.Fatal(err)
	}
	cfg0 := DefaultConfig(topology.AWSV100(), model.ResNet50(), 16, 3)
	res0, err := Run(cfg0, NewAllReduce())
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockedComm <= res0.BlockedComm {
		t.Fatalf("jitter blocked %v not above uniform %v", res.BlockedComm, res0.BlockedComm)
	}
}

func TestTraceAccountsComputeAndStalls(t *testing.T) {
	cfg := DefaultConfig(topology.SDSCP100(), model.ResNet50(), 8, 2)
	rec := trace.New()
	cfg.Trace = rec
	res, err := Run(cfg, NewAllReduce())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
	totals := rec.TotalByCat("worker 0")
	// Compute spans must sum to iterations x roofline compute.
	wantCompute := res.ComputeTime * 2
	if totals["compute"] != wantCompute {
		t.Fatalf("traced compute %v != %v", totals["compute"], wantCompute)
	}
	// Stall spans must sum to the trainer's blocked accounting.
	var blockedAll sim.Time
	for w := 0; w < res.Workers; w++ {
		blockedAll += rec.TotalByCat(fmt.Sprintf("worker %d", w))["stall"]
	}
	wantBlocked := res.BlockedComm * sim.Time(res.Workers) * 2 // per-worker per-iter mean
	diff := blockedAll - wantBlocked
	if diff < 0 {
		diff = -diff
	}
	// Integer division in the mean loses at most a few ns per worker.
	if diff > sim.Time(res.Workers*4) {
		t.Fatalf("traced stalls %v != blocked accounting %v", blockedAll, wantBlocked)
	}
}

func TestComputeJitterSingleWorkerNoop(t *testing.T) {
	spec := topology.SDSCP100()
	spec.Slots = []string{"WM", "M-"}
	cfg := DefaultConfig(spec, model.MLP("t", 16, 8), 2, 2)
	cfg.ComputeJitter = 0.5
	if _, err := Run(cfg, NewAllReduce()); err != nil {
		t.Fatal(err)
	}
}
