// Package serve is the inference-serving workload family: an open-loop
// request stream (internal/serve/arrival.go) driven through a
// continuous-batching scheduler over disaggregated prefill and decode
// GPU pools, with per-sequence KV caches placed either in worker HBM
// (KVLocal) or pooled in the machine's CCI memory devices (KVPooled).
//
// The serving model follows the CXL/CCI-pool inference literature the
// roadmap cites (XL-Share's shared parameter copy with local caching;
// disaggregated prefill/decode with KV pooling):
//
//   - One shared parameter copy lives in the CCI pool. Every worker
//     holds a local coherent cache of a ParamCacheFraction of it; the
//     miss remainder streams over the fabric (cci.Fabric.DMACopy) once
//     per prefill and once per decode iteration — amortized across the
//     batch, which is what makes batching pay.
//   - With KVPooled, each sequence's KV cache lives in a CCI memory
//     device: every decode step writes the new token's KV page to the
//     pool and reads back the (1-KVHitRate) slice of the growing
//     context that missed the worker's local page cache. Prefetch
//     overlaps the next step's reads under compute instead of gating
//     the iteration on them (the bandwidth is still spent).
//   - With KVLocal, KV pages stay in worker HBM: no per-step fabric
//     traffic (beyond the shared parameter stream), but admission into
//     a decode batch reserves the sequence's full-context KV footprint
//     against LocalKVBudget — the HBM wall that caps concurrency.
//
// Decode iterations are the continuous-batching boundary: sequences
// join and leave a worker's batch only between iterations, one token
// per active sequence per iteration. Per-request lifecycle metrics
// (TTFT, TPOT) roll up into p50/p99/p99.9 and goodput-vs-offered-load,
// the serving side of the paper's "millions of users" story.
//
// Everything runs on the deterministic DES: arrivals are foreground
// engine events scheduled from the pre-generated trace (daemon events
// would let Run return with requests still in flight), fabric traffic
// uses the same flow machinery training does, and chaos windows
// (notably CCI brownouts browning out the pool's ports under live
// traffic) compose exactly as in training.
package serve

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"

	"coarse/internal/cci"
	"coarse/internal/chaos"
	"coarse/internal/fabric"
	"coarse/internal/gpu"
	"coarse/internal/model"
	"coarse/internal/sim"
	"coarse/internal/telemetry"
	"coarse/internal/topology"
)

// KVPlacement says where per-sequence KV caches live.
type KVPlacement int

const (
	// KVLocal keeps KV pages in the decode worker's HBM, capacity-capped
	// by LocalKVBudget.
	KVLocal KVPlacement = iota
	// KVPooled allocates KV in CCI memory devices, traded for per-step
	// fabric traffic.
	KVPooled
)

// String returns the lower-case placement name.
func (p KVPlacement) String() string {
	if p == KVPooled {
		return "pooled"
	}
	return "local"
}

// ParseKVPlacement maps a placement name to its KVPlacement.
func ParseKVPlacement(s string) (KVPlacement, error) {
	switch s {
	case "local":
		return KVLocal, nil
	case "pooled":
		return KVPooled, nil
	}
	return 0, fmt.Errorf("serve: unknown KV placement %q (local, pooled)", s)
}

// Config describes one serving run.
type Config struct {
	Spec     topology.Spec
	Model    *model.Model
	Workload Workload

	CCIParams cci.Params

	// PrefillWorkers is the size of the prefill pool (the first N
	// worker GPUs); the rest decode. Zero derives max(1, workers/4).
	PrefillWorkers int
	// MaxBatch caps the sequences a decode worker batches per
	// iteration; zero means 8.
	MaxBatch int

	KVPlacement KVPlacement
	// Prefetch (KVPooled only) issues the next decode step's KV page
	// reads under the current step's compute instead of gating the
	// iteration barrier on them.
	Prefetch bool
	// KVBytesPerToken is the KV-cache footprint of one token; zero
	// means 4 MiB (a large-decoder surrogate: the model graph stands in
	// for a much bigger network's compute, the KV page size for its
	// memory footprint).
	KVBytesPerToken int64
	// LocalKVBudget is the per-decode-worker HBM set aside for KV pages
	// under KVLocal; zero means 1 GiB.
	LocalKVBudget int64
	// KVHitRate is the fraction of a pooled sequence's context KV that
	// hits the worker's local page cache each step; the miss slice is
	// read over the fabric. Zero means 0.95.
	KVHitRate float64
	// ParamCacheFraction is the slice of the shared parameter copy each
	// worker caches locally; the rest streams from the pool per prefill
	// and per decode iteration. Zero means 0.95.
	ParamCacheFraction float64

	// SLOTTFT / SLOTPOT define goodput: a request is "good" when its
	// TTFT and TPOT both meet the objective. Zeros mean 25 ms / 20 ms.
	SLOTTFT sim.Time
	SLOTPOT sim.Time

	// Chaos compiles into a deterministic fault plan (using Seed)
	// injected during the run, exactly as in training: CCI brownouts
	// throttle the pool ports pooled KV and the parameter stream cross,
	// worker stalls pause prefill/decode compute. A spec compiling to
	// nothing observable leaves every output byte unchanged.
	Chaos *chaos.Spec

	// Telemetry, when non-nil, receives fabric/CCI/chaos series plus
	// serving counters (arrivals, tokens, queue depths, TTFT/TPOT
	// histograms), sampled on daemon events only.
	Telemetry           *telemetry.Registry
	TelemetryPeriod     sim.Time
	TelemetryMaxSamples int

	Seed int64
}

// DefaultConfig fills in the standard serving constants.
func DefaultConfig(spec topology.Spec, m *model.Model, w Workload) Config {
	return Config{
		Spec:      spec,
		Model:     m,
		Workload:  w,
		CCIParams: cci.DefaultParams(),
		Seed:      1,
	}
}

// withDefaults resolves zero-valued knobs.
func (c Config) withDefaults(workers int) Config {
	if c.PrefillWorkers <= 0 {
		c.PrefillWorkers = workers / 4
		if c.PrefillWorkers < 1 {
			c.PrefillWorkers = 1
		}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.KVBytesPerToken <= 0 {
		c.KVBytesPerToken = 4 << 20
	}
	if c.LocalKVBudget <= 0 {
		c.LocalKVBudget = 1 << 30
	}
	if c.KVHitRate <= 0 {
		c.KVHitRate = 0.95
	}
	if c.ParamCacheFraction <= 0 {
		c.ParamCacheFraction = 0.95
	}
	if c.SLOTTFT <= 0 {
		c.SLOTTFT = 25 * 1_000_000
	}
	if c.SLOTPOT <= 0 {
		c.SLOTPOT = 20 * 1_000_000
	}
	return c
}

// LatencyStats is one latency distribution's summary. Percentiles are
// nearest-rank over the completed requests.
type LatencyStats struct {
	Mean sim.Time `json:"mean_ns"`
	P50  sim.Time `json:"p50_ns"`
	P99  sim.Time `json:"p99_ns"`
	P999 sim.Time `json:"p999_ns"`
}

func summarize(xs []sim.Time) LatencyStats {
	if len(xs) == 0 {
		return LatencyStats{}
	}
	sorted := make([]sim.Time, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum sim.Time
	for _, x := range sorted {
		sum += x
	}
	return LatencyStats{
		Mean: sum / sim.Time(len(sorted)),
		P50:  percentile(sorted, 0.50),
		P99:  percentile(sorted, 0.99),
		P999: percentile(sorted, 0.999),
	}
}

// percentile is the nearest-rank percentile of a sorted slice.
func percentile(sorted []sim.Time, q float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Result summarizes one serving run.
type Result struct {
	Machine   string `json:"machine"`
	Model     string `json:"model"`
	Placement string `json:"placement"`
	Arrival   string `json:"arrival"`
	Prefetch  bool   `json:"prefetch,omitempty"`

	Workers        int `json:"workers"`
	PrefillWorkers int `json:"prefill_workers"`
	DecodeWorkers  int `json:"decode_workers"`

	Requests  int `json:"requests"`
	Completed int `json:"completed"`

	// OfferedRPS is the workload's nominal arrival rate; AchievedRPS is
	// completions over the makespan; GoodputRPS counts only requests
	// meeting both SLOs.
	OfferedRPS    float64 `json:"offered_rps"`
	AchievedRPS   float64 `json:"achieved_rps"`
	GoodputRPS    float64 `json:"goodput_rps"`
	SLOAttainment float64 `json:"slo_attainment"`

	TotalTime sim.Time     `json:"total_time_ns"`
	TTFT      LatencyStats `json:"ttft"`
	TPOT      LatencyStats `json:"tpot"`

	// MeanBatch is the mean decode batch size over iterations — the
	// continuous-batching occupancy the KV placement caps or frees.
	MeanBatch float64 `json:"mean_batch"`

	// KVFabricBytes / ParamFabricBytes are the fabric volumes the KV
	// pages (pool writes + miss reads + prefill handoffs) and the
	// shared parameter stream moved.
	KVFabricBytes    int64 `json:"kv_fabric_bytes"`
	ParamFabricBytes int64 `json:"param_fabric_bytes"`

	// EdgeBusUtil / CCIBusUtil mirror the training metrics: mean
	// utilization of the worker edge links and the CCI pool's memory-
	// device port links (the DMA paths serving traffic actually takes).
	EdgeBusUtil float64 `json:"edge_bus_util"`
	CCIBusUtil  float64 `json:"cci_bus_util"`

	// Events fingerprints the whole simulation (see train.RunMetrics).
	Events uint64 `json:"events"`

	ChaosFaults uint64   `json:"chaos_faults,omitempty"`
	ChaosStall  sim.Time `json:"chaos_stall_ns,omitempty"`
}

// seqState tracks one request through its lifecycle.
type seqState struct {
	req       Request
	kvDev     *topology.Device // pool home (KVPooled)
	decoder   int              // global worker index
	generated int
	reserved  int64 // local-HBM KV bytes held (KVLocal)
	firstTok  sim.Time
	done      sim.Time
	finished  bool
}

// Sim is one serving simulation: machine, pools, queues, measurements.
type Sim struct {
	cfg     Config
	eng     *sim.Engine
	machine *topology.Machine
	fab     *cci.Fabric
	gpus    []*gpu.GPU
	chaos   *chaos.Injector

	paramDev  *topology.Device
	paramMiss int64 // per-pass fabric stream of the shared copy

	trace []Request
	seqs  []seqState

	prefillQ    []int // request indices, FIFO
	prefillBusy []bool

	decodeQ      [][]int // per decode worker, FIFO
	decodeActive [][]int
	decodeBusy   []bool
	kvUsed       []int64 // per decode worker, KVLocal reservations

	completed  int
	iterations int
	batchSum   int
	kvBytes    int64
	paramBytes int64

	// tokenFLOPs is the per-token forward cost: the model graph's
	// per-sample FLOPs spread over TokensPerSample. Decode is one token
	// per sequence per iteration; prefill is PromptTokens at once.
	tokenFLOPs float64
	layerCount int
	weightPass sim.Time // full parameter read from HBM, amortized per batch

	reg      *telemetry.Registry
	ttftHist *telemetry.Histogram
	tpotHist *telemetry.Histogram
	cArrived *telemetry.Counter
	cTokens  *telemetry.Counter
	dump     *telemetry.Dump
}

// tokensPerSample is the sequence length one model "sample" stands
// for: model.FwdFLOPs is per training sample, serving charges it per
// that many tokens.
const tokensPerSample = 128

// envPartition mirrors train's COARSE_PARTITION hook so CI can force
// the partitioned engine core process-wide; serving machines are
// single-rack (partitioning requires Racks > 1), so the setting is
// accepted and inert — the byte-identity replays still cover it.
const envPartition = "COARSE_PARTITION"

// New builds a serving simulation. It fails when the machine cannot
// host the configuration: fewer than two workers (the pools must
// disaggregate), no CCI memory device for the shared parameter copy,
// or a LocalKVBudget too small for one maximal sequence.
func New(cfg Config) (*Sim, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("serve: no model")
	}
	eng := sim.NewEngine()
	machine := topology.Build(eng, cfg.Spec)
	if len(machine.Workers) < 2 {
		return nil, fmt.Errorf("serve: %s has %d worker GPUs; disaggregated pools need at least 2",
			cfg.Spec.Label, len(machine.Workers))
	}
	if len(machine.Devs) == 0 {
		return nil, fmt.Errorf("serve: %s has no CCI memory devices to hold the shared parameter copy", cfg.Spec.Label)
	}
	cfg = cfg.withDefaults(len(machine.Workers))
	if cfg.PrefillWorkers >= len(machine.Workers) {
		return nil, fmt.Errorf("serve: %d prefill workers leave no decode pool on %d GPUs",
			cfg.PrefillWorkers, len(machine.Workers))
	}
	w := cfg.Workload.withDefaults()
	cfg.Workload = w
	maxSeqKV := int64(w.PromptMax+w.OutputMax) * cfg.KVBytesPerToken
	if cfg.KVPlacement == KVLocal && maxSeqKV > cfg.LocalKVBudget {
		return nil, fmt.Errorf("serve: local KV budget %d cannot hold one maximal sequence (%d bytes)",
			cfg.LocalKVBudget, maxSeqKV)
	}

	s := &Sim{
		cfg:      cfg,
		eng:      eng,
		machine:  machine,
		fab:      cci.NewFabric(machine.Topology, cfg.CCIParams),
		paramDev: machine.Devs[0],
	}
	s.paramMiss = int64((1 - cfg.ParamCacheFraction) * float64(cfg.Model.ParamBytes()))
	s.tokenFLOPs = cfg.Model.FwdFLOPs() / tokensPerSample
	s.layerCount = len(cfg.Model.Layers)

	// Worker GPUs; the locally cached parameter slice is a permanent
	// allocation on every worker, KV reservations come and go on the
	// decode pool under KVLocal.
	paramCache := int64(cfg.ParamCacheFraction * float64(cfg.Model.ParamBytes()))
	for _, dev := range machine.Workers {
		g := gpu.New(dev, cfg.Spec.GPU)
		if err := g.Alloc(paramCache); err != nil {
			return nil, fmt.Errorf("serve: parameter cache does not fit: %w", err)
		}
		s.gpus = append(s.gpus, g)
	}
	s.weightPass = sim.Seconds(float64(cfg.Model.ParamBytes()) / cfg.Spec.GPU.MemBW)

	decode := len(machine.Workers) - cfg.PrefillWorkers
	s.prefillBusy = make([]bool, cfg.PrefillWorkers)
	s.decodeQ = make([][]int, decode)
	s.decodeActive = make([][]int, decode)
	s.decodeBusy = make([]bool, decode)
	s.kvUsed = make([]int64, decode)

	if cfg.Chaos != nil {
		plan := cfg.Chaos.Compile(cfg.Seed, chaos.EnvOf(machine))
		if err := plan.Validate(); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.chaos = chaos.NewInjector(plan, machine)
	}
	// COARSE_PARTITION handling mirrors train: parsed for parity, but
	// single-rack serving machines never enable partitions.
	if v, err := strconv.Atoi(os.Getenv(envPartition)); err == nil && v > 0 && machine.Spec.Racks > 1 {
		if la := machine.MinLinkLatency(); la > 0 {
			eng.EnablePartitions(machine.Spec.Racks, la, v)
		}
	}
	if cfg.Telemetry != nil {
		s.registerTelemetry()
	}
	return s, nil
}

// kvHome returns the pool device holding a sequence's KV cache: spread
// round-robin over the devices after the parameter home (all of them
// when there is only one).
func (s *Sim) kvHome(id int) *topology.Device {
	devs := s.machine.Devs
	if len(devs) == 1 {
		return devs[0]
	}
	return devs[1+id%(len(devs)-1)]
}

// decodeStepTime is one decode iteration over batch sequences, one
// token each: per-token compute against the full-weight HBM pass
// (amortized across the batch — the reason continuous batching pays),
// plus per-layer launch overhead.
func (s *Sim) decodeStepTime(g *gpu.GPU, batch int) sim.Time {
	compute := s.tokenFLOPs * float64(batch) / (g.Spec.TFLOPS * 1e12 * g.Efficiency)
	t := sim.Seconds(compute)
	if s.weightPass > t {
		t = s.weightPass
	}
	return sim.Time(s.layerCount)*g.KernelOverhead + t
}

// prefillTime is the whole-prompt forward: all prompt tokens in one
// pass, against the same weight-pass floor.
func (s *Sim) prefillTime(g *gpu.GPU, promptTokens int) sim.Time {
	return s.decodeStepTime(g, promptTokens)
}

// barrier counts outstanding contributions to one scheduling step;
// fn runs when the last lands. All contributions are registered before
// any completion can fire (flows and compute both resolve at future
// virtual times), so the count never reaches zero early.
type barrier struct {
	n  int
	fn func()
}

func (b *barrier) add() { b.n++ }
func (b *barrier) done() {
	b.n--
	if b.n == 0 {
		b.fn()
	}
}

// Run executes the serving simulation.
func (s *Sim) Run() (*Result, error) {
	cfg := s.cfg
	s.trace = GenerateTrace(cfg.Workload, cfg.Seed)
	s.seqs = make([]seqState, len(s.trace))
	decode := len(s.machine.Workers) - cfg.PrefillWorkers
	for i, q := range s.trace {
		s.seqs[i] = seqState{
			req:     q,
			kvDev:   s.kvHome(q.ID),
			decoder: cfg.PrefillWorkers + q.ID%decode,
		}
	}
	// Arrivals are foreground events: they must keep Run alive until
	// the last request drains.
	for i := range s.seqs {
		i := i
		s.eng.At(s.seqs[i].req.Arrival, func() { s.arrive(i) })
	}
	s.chaos.Arm(s.eng)
	var sampler *telemetry.Sampler
	if cfg.Telemetry != nil {
		period := cfg.TelemetryPeriod
		if period <= 0 {
			period = telemetry.DefaultSamplePeriod
		}
		max := cfg.TelemetryMaxSamples
		if max <= 0 {
			max = telemetry.DefaultMaxSamples
		}
		sampler = telemetry.NewSampler(s.eng, cfg.Telemetry, period, max)
		sampler.Start()
	}
	s.eng.Run()
	if s.completed != len(s.trace) {
		return nil, fmt.Errorf("serve: stalled: %d of %d requests completed", s.completed, len(s.trace))
	}
	if sampler != nil {
		sampler.Finish()
		s.dump = telemetry.BuildDump(sampler)
		s.dump.SetLabel("machine", cfg.Spec.Label)
		s.dump.SetLabel("model", cfg.Model.Name)
		s.dump.SetLabel("placement", cfg.KVPlacement.String())
		s.dump.SetLabel("arrival", cfg.Workload.Arrival.String())
		s.dump.SetLabel("requests", fmt.Sprint(len(s.trace)))
	}
	return s.result(), nil
}

// TelemetryDump returns the time-series dump built by Run, or nil when
// Config.Telemetry was not set.
func (s *Sim) TelemetryDump() *telemetry.Dump { return s.dump }

// arrive enqueues a request on the prefill pool.
func (s *Sim) arrive(i int) {
	if s.cArrived != nil {
		s.cArrived.Inc()
	}
	s.prefillQ = append(s.prefillQ, i)
	s.kickPrefill()
}

// kickPrefill hands queued requests to idle prefill workers in worker
// order — one request per worker at a time (prefill batches of one).
func (s *Sim) kickPrefill() {
	for pw := range s.prefillBusy {
		if len(s.prefillQ) == 0 {
			return
		}
		if s.prefillBusy[pw] {
			continue
		}
		i := s.prefillQ[0]
		s.prefillQ = s.prefillQ[1:]
		s.prefillBusy[pw] = true
		s.startPrefill(pw, i)
	}
}

// startPrefill runs one request's prefill on prefill worker pw: the
// prompt forward overlapped with the shared-parameter miss stream from
// the pool. Completion is the first response token (TTFT), after which
// the prompt's KV ships to the decode side and the worker frees.
func (s *Sim) startPrefill(pw, i int) {
	seq := &s.seqs[i]
	g := s.gpus[pw]
	start := s.eng.Now()
	b := &barrier{fn: func() { s.finishPrefill(pw, i) }}
	b.add()
	dur := s.prefillTime(g, seq.req.PromptTokens)
	s.eng.At(s.chaos.AdvanceCompute(pw, start, dur), b.done)
	if s.paramMiss > 0 {
		b.add()
		s.paramBytes += s.paramMiss
		s.fab.DMACopy(s.paramDev, g.Dev, s.paramMiss, b.done)
	}
}

// finishPrefill emits the first token, ships the prompt KV, and frees
// the prefill worker.
func (s *Sim) finishPrefill(pw, i int) {
	seq := &s.seqs[i]
	seq.firstTok = s.eng.Now()
	if s.ttftHist != nil {
		s.ttftHist.Observe(float64(seq.firstTok-seq.req.Arrival) / 1e6)
	}
	// Prompt KV leaves the prefill worker either way: to the pool
	// device (KVPooled) or to the decode worker's HBM (KVLocal). The
	// sequence joins the decode queue when the pages land.
	kv := int64(seq.req.PromptTokens) * s.cfg.KVBytesPerToken
	dst := seq.kvDev
	if s.cfg.KVPlacement == KVLocal {
		dst = s.machine.Workers[seq.decoder]
	}
	s.kvBytes += kv
	s.fab.DMACopy(s.gpus[pw].Dev, dst, kv, func() { s.enqueueDecode(i) })
	s.prefillBusy[pw] = false
	s.kickPrefill()
}

// enqueueDecode adds a prefilled sequence to its decode worker's queue.
func (s *Sim) enqueueDecode(i int) {
	seq := &s.seqs[i]
	d := seq.decoder - s.cfg.PrefillWorkers
	s.decodeQ[d] = append(s.decodeQ[d], i)
	if !s.decodeBusy[d] {
		s.startIteration(d)
	}
}

// admit moves queued sequences into decode worker d's active batch up
// to MaxBatch; under KVLocal each admission reserves the sequence's
// full-context KV footprint against the budget, and the queue blocks
// head-of-line when the next sequence does not fit (FIFO admission
// keeps the schedule deterministic and models the HBM wall as
// queueing, not reordering).
func (s *Sim) admit(d int) {
	for len(s.decodeActive[d]) < s.cfg.MaxBatch && len(s.decodeQ[d]) > 0 {
		i := s.decodeQ[d][0]
		seq := &s.seqs[i]
		if s.cfg.KVPlacement == KVLocal {
			need := int64(seq.req.PromptTokens+seq.req.OutputTokens) * s.cfg.KVBytesPerToken
			if s.kvUsed[d]+need > s.cfg.LocalKVBudget {
				return
			}
			s.kvUsed[d] += need
			seq.reserved = need
		}
		s.decodeQ[d] = s.decodeQ[d][1:]
		s.decodeActive[d] = append(s.decodeActive[d], i)
	}
}

// startIteration runs one continuous-batching decode iteration on
// decode worker d: admit at the boundary, then one token per active
// sequence gated on compute, the shared-parameter stream, and (pooled,
// unprefetched) the context KV miss reads.
func (s *Sim) startIteration(d int) {
	s.admit(d)
	if len(s.decodeActive[d]) == 0 {
		s.decodeBusy[d] = false
		return
	}
	s.decodeBusy[d] = true
	w := s.cfg.PrefillWorkers + d
	g := s.gpus[w]
	batch := len(s.decodeActive[d])
	s.iterations++
	s.batchSum += batch

	b := &barrier{fn: func() { s.finishIteration(d) }}
	start := s.eng.Now()
	b.add()
	dur := s.decodeStepTime(g, batch)
	s.eng.At(s.chaos.AdvanceCompute(w, start, dur), b.done)
	if s.paramMiss > 0 {
		b.add()
		s.paramBytes += s.paramMiss
		s.fab.DMACopy(s.paramDev, g.Dev, s.paramMiss, b.done)
	}
	if s.cfg.KVPlacement == KVPooled {
		for _, i := range s.decodeActive[d] {
			seq := &s.seqs[i]
			// The new token's KV page goes to the pool.
			b.add()
			s.kvBytes += s.cfg.KVBytesPerToken
			s.fab.DMACopy(g.Dev, seq.kvDev, s.cfg.KVBytesPerToken, b.done)
			// The context slice that missed the local page cache comes
			// back. Prefetched reads overlap compute (they are the
			// *next* step's pages, issued now) and do not gate the
			// barrier; the fabric still carries them.
			ctx := seq.req.PromptTokens + seq.generated
			miss := int64((1 - s.cfg.KVHitRate) * float64(int64(ctx)*s.cfg.KVBytesPerToken))
			if miss <= 0 {
				continue
			}
			s.kvBytes += miss
			if s.cfg.Prefetch {
				s.fab.DMACopy(seq.kvDev, g.Dev, miss, func() {})
			} else {
				b.add()
				s.fab.DMACopy(seq.kvDev, g.Dev, miss, b.done)
			}
		}
	}
}

// finishIteration retires one token per active sequence, completes
// finished sequences, and immediately starts the next iteration.
func (s *Sim) finishIteration(d int) {
	now := s.eng.Now()
	active := s.decodeActive[d][:0]
	for _, i := range s.decodeActive[d] {
		seq := &s.seqs[i]
		seq.generated++
		if s.cTokens != nil {
			s.cTokens.Inc()
		}
		if seq.generated < seq.req.OutputTokens {
			active = append(active, i)
			continue
		}
		seq.finished = true
		seq.done = now
		s.completed++
		if s.cfg.KVPlacement == KVLocal {
			s.kvUsed[d] -= seq.reserved
		}
		if s.tpotHist != nil {
			s.tpotHist.Observe(tpot(seq).ToSeconds() * 1e3)
		}
	}
	s.decodeActive[d] = active
	s.startIteration(d)
}

// tpot is a finished sequence's mean time per output token: decode
// makespan over decode-generated tokens.
func tpot(seq *seqState) sim.Time {
	return (seq.done - seq.firstTok) / sim.Time(seq.req.OutputTokens)
}

// registerTelemetry wires the serving layer into the registry next to
// the fabric/CCI/chaos series training registers.
func (s *Sim) registerTelemetry() {
	reg := s.cfg.Telemetry
	s.reg = reg
	// Serving traffic crosses the worker edge links and the pool's
	// memdev ports (DMA paths), not the memdev↔memdev ring collectives
	// use — instrument the links the workload actually exercises.
	edge := s.machine.LinksBetween(topology.KindGPU, topology.KindPort)
	ports := s.machine.LinksBetween(topology.KindMemDev, topology.KindPort)
	links := append(append([]*fabric.Link{}, edge...), ports...)
	telemetry.RegisterLinks(reg, s.eng, links)
	telemetry.RegisterNetwork(reg, s.machine.Net)
	s.fab.AttachTelemetry(reg)
	s.chaos.AttachTelemetry(reg)
	s.cArrived = reg.Counter("serve/requests_arrived", "reqs")
	s.cTokens = reg.Counter("serve/tokens_generated", "tokens")
	reg.GaugeFunc("serve/prefill_queue", "reqs", func() float64 { return float64(len(s.prefillQ)) })
	reg.GaugeFunc("serve/decode_queued", "reqs", func() float64 {
		n := 0
		for _, q := range s.decodeQ {
			n += len(q)
		}
		return float64(n)
	})
	reg.GaugeFunc("serve/decode_active", "seqs", func() float64 {
		n := 0
		for _, a := range s.decodeActive {
			n += len(a)
		}
		return float64(n)
	})
	reg.GaugeFunc("serve/completed", "reqs", func() float64 { return float64(s.completed) })
	s.ttftHist = reg.Histogram("serve/ttft_ms", "ms", telemetry.ExpBuckets(0.25, 2, 14))
	s.tpotHist = reg.Histogram("serve/tpot_ms", "ms", telemetry.ExpBuckets(0.25, 2, 14))
}

// result rolls per-request lifecycles into the run summary.
func (s *Sim) result() *Result {
	cfg := s.cfg
	total := s.eng.Now()
	ttfts := make([]sim.Time, 0, len(s.seqs))
	tpots := make([]sim.Time, 0, len(s.seqs))
	good := 0
	for i := range s.seqs {
		seq := &s.seqs[i]
		if !seq.finished {
			continue
		}
		ttft := seq.firstTok - seq.req.Arrival
		tp := tpot(seq)
		ttfts = append(ttfts, ttft)
		tpots = append(tpots, tp)
		if ttft <= cfg.SLOTTFT && tp <= cfg.SLOTPOT {
			good++
		}
	}
	res := &Result{
		Machine:          cfg.Spec.Label,
		Model:            cfg.Model.Name,
		Placement:        cfg.KVPlacement.String(),
		Arrival:          cfg.Workload.Arrival.String(),
		Prefetch:         cfg.Prefetch,
		Workers:          len(s.machine.Workers),
		PrefillWorkers:   cfg.PrefillWorkers,
		DecodeWorkers:    len(s.machine.Workers) - cfg.PrefillWorkers,
		Requests:         len(s.trace),
		Completed:        s.completed,
		OfferedRPS:       cfg.Workload.RatePerSec,
		TotalTime:        total,
		TTFT:             summarize(ttfts),
		TPOT:             summarize(tpots),
		KVFabricBytes:    s.kvBytes,
		ParamFabricBytes: s.paramBytes,
		Events:           s.eng.Dispatched(),
		ChaosFaults:      s.chaos.FaultsOpened(),
		ChaosStall:       s.chaos.AttributedStall(),
	}
	if total > 0 {
		res.AchievedRPS = float64(s.completed) / total.ToSeconds()
		res.GoodputRPS = float64(good) / total.ToSeconds()
		edge := s.machine.LinksBetween(topology.KindGPU, topology.KindPort)
		ports := s.machine.LinksBetween(topology.KindMemDev, topology.KindPort)
		res.EdgeBusUtil = topology.MeanUtilization(edge, total)
		res.CCIBusUtil = topology.MeanUtilization(ports, total)
	}
	if s.completed > 0 {
		res.SLOAttainment = float64(good) / float64(s.completed)
	}
	if s.iterations > 0 {
		res.MeanBatch = float64(s.batchSum) / float64(s.iterations)
	}
	return res
}

// Run is the convenience entry point: build a simulation and run it.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
