// Custom machine: model your own disaggregated-memory system.
//
// MachineSpec is a plain struct, so a hypothetical machine — here a
// CXL-2.0-class box with PCIe gen5 links and big memory expanders — is
// a literal away. The same profiler, strategies and trainer run on it
// unchanged, which is the workflow a systems designer would use to ask
// "would COARSE help on *my* fabric?".
//
//	go run ./examples/custom-machine
package main

import (
	"fmt"
	"log"

	coarse "coarse"
)

func main() {
	const gb = 1e9
	// A next-generation machine: PCIe gen5 x16 edges (~50 GB/s), a
	// switch whose peer path is better than its uplink (conventional
	// locality), and CXL links between the memory expanders.
	spec := coarse.MachineSpec{
		Label:     "CXL gen5 box",
		Switches:  4,
		Slots:     []string{"WM"},
		EdgeBW:    50 * gb,
		PeerBW:    48 * gb,
		UpBW:      32 * gb,
		HostBW:    120 * gb,
		CCIRingBW: 45 * gb,
		CCIHostBW: 40 * gb,
		EdgeLat:   250,
		SwitchLat: 400,
		HostLat:   700,
		CCILat:    150,
		P2P:       true,
		GPU:       coarse.GPUSpecOf("H100-class", 60, 80<<30, 3000*gb),
	}

	fmt.Printf("profiling %s...\n\n", spec.Label)
	for w, table := range coarse.Profile(spec) {
		best := table.Measurements[table.BwProxy]
		fmt.Printf("worker %d: LatProxy=%d BwProxy=%d (%.1f GB/s), non-uniform=%v\n",
			w, table.LatProxy, table.BwProxy, best.Bandwidth/1e9, table.NonUniform())
	}

	fmt.Println("\ntraining BERT-Large, batch 8:")
	for _, s := range []coarse.Strategy{coarse.StrategyAllReduce, coarse.StrategyCOARSE} {
		res, err := coarse.Train(spec, coarse.BERTLarge(), 8, 3, s)
		if err != nil {
			log.Fatalf("%s: %v", s, err)
		}
		fmt.Printf("  %-10s iter=%11v blocked=%11v util=%5.1f%%\n",
			s, res.IterTime, res.BlockedComm, 100*res.GPUUtil)
	}
}
