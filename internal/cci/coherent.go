package cci

import (
	"fmt"

	"coarse/internal/ccimem"
	"coarse/internal/coherence"
)

// CoherentRegion is a CCI memory region fronted by per-sharer coherent
// caches — the DENSE architecture's parameter cache (paper Figure 5):
// every GPU reads and writes the shared parameter region through its
// own cache, the directory keeps the copies coherent, and the protocol
// traffic that motivates COARSE's decentralization accumulates in the
// stats.
//
// Data lives in the underlying ccimem region (the device DRAM); the
// coherence layer tracks line states and a per-line version so the
// protocol's data-value invariant stays checkable.
type CoherentRegion struct {
	region    *ccimem.Region
	dir       *coherence.Directory
	caches    []*coherence.Cache
	lineBytes int64
	version   uint64
}

// NewCoherentRegion fronts the region with sharers coherent caches at
// the given line size.
func NewCoherentRegion(region *ccimem.Region, lineBytes int64, sharers int) *CoherentRegion {
	if sharers < 1 {
		panic(fmt.Sprintf("cci: %d sharers", sharers))
	}
	cr := &CoherentRegion{
		region:    region,
		dir:       coherence.NewDirectory(lineBytes),
		lineBytes: lineBytes,
	}
	for i := 0; i < sharers; i++ {
		cr.caches = append(cr.caches, cr.dir.NewCache())
	}
	return cr
}

// Sharers returns the number of coherent caches.
func (cr *CoherentRegion) Sharers() int { return len(cr.caches) }

// Stats returns the accumulated protocol message counts.
func (cr *CoherentRegion) Stats() coherence.Stats { return cr.dir.Stats() }

// CheckInvariants verifies the protocol's single-writer invariant.
func (cr *CoherentRegion) CheckInvariants() error { return cr.dir.CheckInvariants() }

func (cr *CoherentRegion) lineRange(off, bytes int64) (first, last coherence.LineAddr) {
	return coherence.LineAddr(off / cr.lineBytes),
		coherence.LineAddr((off + bytes - 1) / cr.lineBytes)
}

// WriteFloats stores vals at the float offset through sharer's cache:
// every touched line goes through a coherent write (invalidating other
// copies) before the data lands in device memory.
func (cr *CoherentRegion) WriteFloats(sharer int, off int64, vals []float32) error {
	if len(vals) == 0 {
		return nil
	}
	cache := cr.caches[sharer]
	byteOff := off * 4
	first, last := cr.lineRange(byteOff, int64(len(vals))*4)
	for line := first; line <= last; line++ {
		cr.version++
		cache.Write(line, cr.version)
	}
	return cr.region.WriteFloats(byteOff, vals)
}

// ReadFloats loads count floats from the float offset through sharer's
// cache: touched lines are fetched coherently (downgrading a remote
// writer if needed) and the payload comes from device memory.
func (cr *CoherentRegion) ReadFloats(sharer int, off int64, count int) ([]float32, error) {
	cache := cr.caches[sharer]
	byteOff := off * 4
	first, last := cr.lineRange(byteOff, int64(count)*4)
	for line := first; line <= last; line++ {
		cache.Read(line)
	}
	return cr.region.ReadFloats(byteOff, count)
}
