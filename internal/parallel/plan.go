package parallel

import (
	"fmt"

	"coarse/internal/model"
)

// Coord is one worker's position in the layout grid.
type Coord struct {
	DP int // data-parallel replica index, 0..DPEff-1
	PP int // pipeline stage
	TP int // tensor-parallel rank within the stage
	EP int // expert-parallel rank
}

// Plan is a validated layout bound to a world size and a model: the
// worker coordinate grid, the contiguous stage partition of the layer
// list, and the gradient reduction trees each layer synchronizes over.
//
// Rank order is TP innermost, then EP, then PP, then DP:
//
//	w = tp + TP*(ep + EP*(pp + PP*dp))
//
// so a TP group is TP adjacent ranks (same node whenever TP divides
// the node's GPU count), an EP group strides by TP, a pipeline
// neighbor strides by TP·EP, and data-parallel peers stride by
// TP·EP·PP — the widest, most topology-spanning communicator, which is
// exactly why the collective planner matters for it.
type Plan struct {
	Layout Layout
	World  int
	// DPEff is the effective data-parallel width: the declared DP times
	// the leftover factor world/(DP·PP·TP·EP).
	DPEff int
	PP    int
	TP    int
	EP    int
	// Micro is the number of microbatches per iteration (>= 1).
	Micro int

	Model  *model.Model
	Coords []Coord // per worker
	Stages [][]int // stage -> global layer indices, contiguous

	stageOf []int   // layer -> owning stage
	groups  [][]int // group id -> sorted member workers
	// layerGroups[layer] lists the group ids that reduce the layer (one
	// per (tp) for dense layers, one per (tp, ep) for expert layers).
	layerGroups [][]int
	// groupLayers[gid] lists the layers a group reduces, forward order.
	groupLayers [][]int
}

// NewPlan binds a layout to a world size and model. It validates that
// the product divides the world, that there are at least PP layers to
// form stages from, and that expert parallelism has MoE layers whose
// expert counts split evenly EP ways.
func NewPlan(l Layout, world int, m *model.Model) (*Plan, error) {
	if m == nil || len(m.Layers) == 0 {
		return nil, fmt.Errorf("parallel: nil or empty model")
	}
	if err := l.Validate(world); err != nil {
		return nil, err
	}
	dp, pp, tp, ep := l.norm()
	if pp > len(m.Layers) {
		return nil, fmt.Errorf("parallel: %d pipeline stages for %d layers", pp, len(m.Layers))
	}
	if ep > 1 {
		moe := 0
		for _, layer := range m.Layers {
			if layer.MoE == nil {
				continue
			}
			moe++
			if layer.MoE.Experts%ep != 0 {
				return nil, fmt.Errorf("parallel: layer %s has %d experts, not divisible by EP %d",
					layer.Name, layer.MoE.Experts, ep)
			}
		}
		if moe == 0 {
			return nil, fmt.Errorf("parallel: EP %d on model %s with no MoE layers", ep, m.Name)
		}
	}
	micro := l.Micro
	if micro == 0 {
		micro = pp
	}

	p := &Plan{
		Layout: l,
		World:  world,
		DPEff:  dp * (world / (dp * pp * tp * ep)),
		PP:     pp,
		TP:     tp,
		EP:     ep,
		Micro:  micro,
		Model:  m,
	}

	p.Coords = make([]Coord, world)
	for w := 0; w < world; w++ {
		p.Coords[w] = Coord{
			TP: w % tp,
			EP: (w / tp) % ep,
			PP: (w / (tp * ep)) % pp,
			DP: w / (tp * ep * pp),
		}
	}

	// Contiguous stage partition, balanced by layer count: stage s owns
	// layers [s*L/PP, (s+1)*L/PP). Deterministic and exact.
	L := len(m.Layers)
	p.stageOf = make([]int, L)
	p.Stages = make([][]int, pp)
	for s := 0; s < pp; s++ {
		lo, hi := s*L/pp, (s+1)*L/pp
		for layer := lo; layer < hi; layer++ {
			p.Stages[s] = append(p.Stages[s], layer)
			p.stageOf[layer] = s
		}
	}

	p.buildGroups()
	return p, nil
}

// worker inverts the coordinate map.
func (p *Plan) worker(dp, pp, tp, ep int) int {
	return tp + p.TP*(ep+p.EP*(pp+p.PP*dp))
}

// buildGroups materializes every gradient reduction tree. Dense layers
// are replicated across both the DP and the EP dimensions (expert
// parallelism only shards expert parameters), so a dense tree holds the
// DPEff·EP workers sharing (stage, tp). Expert layers shard across EP,
// so an expert tree holds the DPEff workers sharing (stage, tp, ep).
// Group ids are dense trees first (s·TP + tp), expert trees after
// (PP·TP + (s·TP+tp)·EP + ep); members are ascending by construction.
func (p *Plan) buildGroups() {
	denseGroups := p.PP * p.TP
	p.groups = make([][]int, denseGroups+denseGroups*p.EP)
	for s := 0; s < p.PP; s++ {
		for tp := 0; tp < p.TP; tp++ {
			gid := s*p.TP + tp
			members := make([]int, 0, p.DPEff*p.EP)
			for dp := 0; dp < p.DPEff; dp++ {
				for ep := 0; ep < p.EP; ep++ {
					members = append(members, p.worker(dp, s, tp, ep))
				}
			}
			p.groups[gid] = members
			for ep := 0; ep < p.EP; ep++ {
				egid := denseGroups + gid*p.EP + ep
				emembers := make([]int, 0, p.DPEff)
				for dp := 0; dp < p.DPEff; dp++ {
					emembers = append(emembers, p.worker(dp, s, tp, ep))
				}
				p.groups[egid] = emembers
			}
		}
	}

	p.layerGroups = make([][]int, len(p.Model.Layers))
	p.groupLayers = make([][]int, len(p.groups))
	for layer, l := range p.Model.Layers {
		s := p.stageOf[layer]
		for tp := 0; tp < p.TP; tp++ {
			base := s*p.TP + tp
			if p.expertSharded(l) {
				for ep := 0; ep < p.EP; ep++ {
					gid := denseGroups + base*p.EP + ep
					p.layerGroups[layer] = append(p.layerGroups[layer], gid)
					p.groupLayers[gid] = append(p.groupLayers[gid], layer)
				}
			} else {
				p.layerGroups[layer] = append(p.layerGroups[layer], base)
				p.groupLayers[base] = append(p.groupLayers[base], layer)
			}
		}
	}
}

// expertSharded reports whether a layer's parameters split across the
// EP dimension. With EP == 1 expert layers behave exactly like dense
// ones (same groups, same volumes), so only EP > 1 switches trees.
func (p *Plan) expertSharded(l model.Layer) bool { return l.MoE != nil && p.EP > 1 }

// StageOf returns the pipeline stage owning a layer.
func (p *Plan) StageOf(layer int) int { return p.stageOf[layer] }

// OwnsLayer reports whether worker w's stage holds a layer.
func (p *Plan) OwnsLayer(w, layer int) bool { return p.Coords[w].PP == p.stageOf[layer] }

// GroupID returns the id of the reduction tree worker w joins for a
// layer, or -1 when w's stage does not own the layer.
func (p *Plan) GroupID(w, layer int) int {
	c := p.Coords[w]
	s := p.stageOf[layer]
	if c.PP != s {
		return -1
	}
	base := s*p.TP + c.TP
	if p.expertSharded(p.Model.Layers[layer]) {
		return p.PP*p.TP + base*p.EP + c.EP
	}
	return base
}

// Groups returns every reduction tree's sorted membership, indexed by
// group id. Dense trees come first, expert trees after; some trees may
// reduce no layers (expert trees of stages without MoE layers).
func (p *Plan) Groups() [][]int { return p.groups }

// GroupMembers returns one tree's sorted membership.
func (p *Plan) GroupMembers(gid int) []int { return p.groups[gid] }

// LayerGroups returns the ids of the trees reducing a layer: TP trees
// for a dense layer, TP·EP for an expert-sharded one.
func (p *Plan) LayerGroups(layer int) []int { return p.layerGroups[layer] }

// GroupLayers returns the layers one tree reduces, in forward order.
func (p *Plan) GroupLayers(gid int) []int { return p.groupLayers[gid] }

// SyncTrees counts the (layer, tree) synchronization completions per
// iteration: every layer is reduced once by each of its trees.
func (p *Plan) SyncTrees() int {
	total := 0
	for _, gids := range p.layerGroups {
		total += len(gids)
	}
	return total
}

// shardDiv returns the factor a layer's parameters shard by: TP for
// dense layers, TP·EP for expert-sharded ones.
func (p *Plan) shardDiv(l model.Layer) int {
	if p.expertSharded(l) {
		return p.TP * p.EP
	}
	return p.TP
}

// SyncBytes returns the gradient volume one reduction tree of a layer
// carries: the per-worker parameter shard. Summed over a layer's trees
// this re-covers the full layer volume (up to ceil rounding), which is
// the conservation property the equivalence tests pin.
func (p *Plan) SyncBytes(layer int) int64 {
	l := p.Model.Layers[layer]
	div := p.shardDiv(l)
	return 4 * int64(ceilDiv(l.ParamElems, div))
}

// LayerShard returns worker-local view of a layer: parameters and
// compute divided by the shard factor, activations split TP ways (the
// token/hidden dimension tensor parallelism slices; expert routing
// returns every token, so EP does not shrink activations).
func (p *Plan) LayerShard(layer int) model.Layer {
	l := p.Model.Layers[layer]
	div := p.shardDiv(l)
	l.ParamElems = ceilDiv(l.ParamElems, div)
	l.FwdFLOPs /= float64(div)
	l.ActBytes = ceilDiv64(l.ActBytes, int64(p.TP))
	return l
}

// WorkerModel returns the model slice worker w materializes: its
// stage's layers, each sharded. Memory feasibility and per-stage
// roofline compute run against this view.
func (p *Plan) WorkerModel(w int) *model.Model {
	s := p.Coords[w].PP
	out := &model.Model{Name: p.Model.Name}
	for _, layer := range p.Stages[s] {
		out.Layers = append(out.Layers, p.LayerShard(layer))
	}
	return out
}

// BoundaryBytes returns the per-sample activation volume crossing the
// stage boundary after stage s: the last layer's retained activations,
// split TP ways (each tensor-parallel rank forwards its slice).
func (p *Plan) BoundaryBytes(s int) int64 {
	layers := p.Stages[s]
	last := p.Model.Layers[layers[len(layers)-1]]
	return ceilDiv64(last.ActBytes, int64(p.TP))
}

// TPGroup returns worker w's tensor-parallel peers (itself included),
// ascending: the TP adjacent ranks sharing (dp, pp, ep).
func (p *Plan) TPGroup(w int) []int {
	base := w - p.Coords[w].TP
	out := make([]int, p.TP)
	for i := range out {
		out[i] = base + i
	}
	return out
}

// EPGroup returns worker w's expert-parallel peers (itself included),
// ascending: the EP ranks sharing (dp, pp, tp), striding by TP.
func (p *Plan) EPGroup(w int) []int {
	c := p.Coords[w]
	out := make([]int, p.EP)
	for ep := 0; ep < p.EP; ep++ {
		out[ep] = p.worker(c.DP, c.PP, c.TP, ep)
	}
	return out
}

// PPNext returns the worker holding the same (dp, tp, ep) slot in the
// next pipeline stage, or -1 at the last stage.
func (p *Plan) PPNext(w int) int {
	c := p.Coords[w]
	if c.PP == p.PP-1 {
		return -1
	}
	return w + p.TP*p.EP
}

// PPPrev returns the previous-stage peer, or -1 at stage 0.
func (p *Plan) PPPrev(w int) int {
	if p.Coords[w].PP == 0 {
		return -1
	}
	return w - p.TP*p.EP
}

// Label renders the effective layout ("dp32-pp4-tp1-ep1") — the string
// run records and the dashboard carry for non-trivial layouts.
func (p *Plan) Label() string {
	return fmt.Sprintf("dp%d-pp%d-tp%d-ep%d", p.DPEff, p.PP, p.TP, p.EP)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }
