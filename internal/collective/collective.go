// Package collective implements MPI-like collective communication over
// the simulated fabric: ring reduce-scatter, all-gather and allreduce.
//
// The collectives are functional — participants hold real float32
// buffers and the reduction actually sums them — and timed: every step's
// transfers are issued on the simulation engine through a caller-supplied
// send function, so ring bandwidth, direction and contention come from
// the fabric. The ring can run in either direction; the memory devices'
// sync groups run two rings in opposite directions to fill both halves
// of each full-duplex link (paper Figure 11b).
package collective

import (
	"fmt"

	"coarse/internal/sim"
	"coarse/internal/telemetry"
	"coarse/internal/tensor"
)

// SendFunc issues a timed transfer of size bytes from participant i to
// its ring neighbor in the given direction (reverse=false means i+1,
// reverse=true means i-1) and calls onDone when the payload lands.
type SendFunc func(i int, reverse bool, size int64, onDone func())

// Ring performs ring collectives among p participants.
type Ring struct {
	eng  *sim.Engine
	p    int
	send SendFunc
	// ALUBytesPerSec models the per-participant reduction throughput;
	// zero means reduction is free (GPU reductions are bandwidth-trivial).
	ALUBytesPerSec float64

	// Telemetry handles; nil (no-op) until AttachTelemetry is called.
	sends     *telemetry.Counter
	sentBytes *telemetry.Counter
}

// AttachTelemetry registers <prefix>/sends and <prefix>/sent_bytes
// counters that every ring step increments. Safe with a nil registry.
func (r *Ring) AttachTelemetry(reg *telemetry.Registry, prefix string) {
	r.sends = reg.Counter(prefix+"/sends", "ops")
	r.sentBytes = reg.Counter(prefix+"/sent_bytes", "B")
}

// xmit wraps the caller's SendFunc with step accounting.
func (r *Ring) xmit(i int, reverse bool, size int64, onDone func()) {
	r.sends.Inc()
	r.sentBytes.Add(float64(size))
	r.send(i, reverse, size, onDone)
}

// NewRing creates a ring of p participants using send for transfers.
func NewRing(eng *sim.Engine, p int, send SendFunc) *Ring {
	if p < 1 {
		panic(fmt.Sprintf("collective: ring of %d", p))
	}
	return &Ring{eng: eng, p: p, send: send}
}

// segment returns the [lo,hi) element range of segment s for buffers of
// length n split p ways.
func segment(n, p, s int) (int, int) {
	base := n / p
	extra := n % p
	lo := s*base + min(s, extra)
	ln := base
	if s < extra {
		ln++
	}
	return lo, lo + ln
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AllReduce sums the participants' equal-length buffers element-wise so
// every buffer ends up holding the total, then calls onDone. Passing
// average=true divides the result by p. Buffers are mutated in place.
func (r *Ring) AllReduce(buffers [][]float32, reverse, average bool, onDone func()) {
	r.ReduceScatter(buffers, reverse, func() {
		r.AllGather(buffers, reverse, func() {
			if average {
				inv := 1 / float32(r.p)
				for _, b := range buffers {
					for i := range b {
						b[i] *= inv
					}
				}
			}
			if onDone != nil {
				onDone()
			}
		})
	})
}

// ReduceScatter runs the p-1 reduction rounds: afterwards participant i
// holds the fully reduced segment (i+1) mod p (forward direction).
func (r *Ring) ReduceScatter(buffers [][]float32, reverse bool, onDone func()) {
	r.validate(buffers)
	if r.p == 1 {
		r.eng.Schedule(0, onDone)
		return
	}
	n := len(buffers[0])
	// sendSeg[i] tracks which segment participant i forwards this round.
	sendSeg := make([]int, r.p)
	for i := range sendSeg {
		sendSeg[i] = i
	}
	var round func(step int)
	round = func(step int) {
		if step == r.p-1 {
			if onDone != nil {
				onDone()
			}
			return
		}
		remaining := r.p
		for i := 0; i < r.p; i++ {
			i := i
			seg := sendSeg[i]
			lo, hi := segment(n, r.p, seg)
			size := int64(hi-lo) * tensor.BytesPerElem
			dst := r.neighbor(i, reverse)
			r.xmit(i, reverse, size, func() {
				// Payload landed: dst accumulates i's segment into its own.
				tensor.AddSlice(buffers[dst][lo:hi], buffers[i][lo:hi])
				r.afterCompute(size, func() {
					remaining--
					if remaining == 0 {
						// dst now forwards the segment it just reduced.
						next := make([]int, r.p)
						for j := 0; j < r.p; j++ {
							next[r.neighbor(j, reverse)] = sendSeg[j]
						}
						sendSeg = next
						round(step + 1)
					}
				})
			})
		}
	}
	round(0)
}

// AllGather propagates each participant's reduced segment around the
// ring so every buffer holds every segment. It must run in the same
// direction as the preceding ReduceScatter.
func (r *Ring) AllGather(buffers [][]float32, reverse bool, onDone func()) {
	r.validate(buffers)
	if r.p == 1 {
		r.eng.Schedule(0, onDone)
		return
	}
	n := len(buffers[0])
	// After reduce-scatter, participant i owns the segment it last
	// reduced: with p-1 rounds of rotation starting from seg i, that is
	// segment (i+1) mod p forward, (i-1+p) mod p reverse.
	own := make([]int, r.p)
	for i := range own {
		if reverse {
			own[i] = (i - 1 + r.p) % r.p
		} else {
			own[i] = (i + 1) % r.p
		}
	}
	var round func(step int)
	round = func(step int) {
		if step == r.p-1 {
			if onDone != nil {
				onDone()
			}
			return
		}
		remaining := r.p
		for i := 0; i < r.p; i++ {
			i := i
			seg := own[i]
			lo, hi := segment(n, r.p, seg)
			size := int64(hi-lo) * tensor.BytesPerElem
			dst := r.neighbor(i, reverse)
			r.xmit(i, reverse, size, func() {
				copy(buffers[dst][lo:hi], buffers[i][lo:hi])
				remaining--
				if remaining == 0 {
					next := make([]int, r.p)
					for j := 0; j < r.p; j++ {
						next[r.neighbor(j, reverse)] = own[j]
					}
					own = next
					round(step + 1)
				}
			})
		}
	}
	round(0)
}

// Broadcast copies root's buffer to every participant around the ring.
func (r *Ring) Broadcast(buffers [][]float32, root int, onDone func()) {
	r.validate(buffers)
	if r.p == 1 {
		r.eng.Schedule(0, onDone)
		return
	}
	size := int64(len(buffers[0])) * tensor.BytesPerElem
	var hop func(i, hops int)
	hop = func(i, hops int) {
		if hops == r.p-1 {
			if onDone != nil {
				onDone()
			}
			return
		}
		dst := r.neighbor(i, false)
		r.xmit(i, false, size, func() {
			copy(buffers[dst], buffers[i])
			hop(dst, hops+1)
		})
	}
	hop(root, 0)
}

// AllReduceBytes runs the allreduce timing for a payload of totalBytes
// without moving data: 2(p-1) rounds in which every participant sends
// one totalBytes/p segment to its neighbor, with ALU time charged on the
// p-1 reduction rounds. Strategies use it when gradients are simulated
// rather than materialized, keeping the timing path identical to the
// functional one.
func (r *Ring) AllReduceBytes(totalBytes int64, reverse bool, onDone func()) {
	if totalBytes < 0 {
		panic("collective: negative payload")
	}
	if r.p == 1 {
		r.eng.Schedule(0, onDone)
		return
	}
	segBase := totalBytes / int64(r.p)
	segExtra := totalBytes % int64(r.p)
	segSize := func(s int) int64 {
		if int64(s) < segExtra {
			return segBase + 1
		}
		return segBase
	}
	sendSeg := make([]int, r.p)
	for i := range sendSeg {
		sendSeg[i] = i
	}
	rotate := func() {
		next := make([]int, r.p)
		for j := 0; j < r.p; j++ {
			next[r.neighbor(j, reverse)] = sendSeg[j]
		}
		sendSeg = next
	}
	var round func(step int)
	round = func(step int) {
		if step == 2*(r.p-1) {
			if onDone != nil {
				onDone()
			}
			return
		}
		reducing := step < r.p-1
		remaining := r.p
		for i := 0; i < r.p; i++ {
			size := segSize(sendSeg[i])
			r.xmit(i, reverse, size, func() {
				after := func() {
					remaining--
					if remaining == 0 {
						rotate()
						round(step + 1)
					}
				}
				if reducing {
					r.afterCompute(size, after)
				} else {
					after()
				}
			})
		}
	}
	round(0)
}

func (r *Ring) neighbor(i int, reverse bool) int {
	if reverse {
		return (i - 1 + r.p) % r.p
	}
	return (i + 1) % r.p
}

func (r *Ring) afterCompute(size int64, fn func()) {
	if r.ALUBytesPerSec <= 0 {
		fn()
		return
	}
	r.eng.Schedule(sim.Seconds(float64(size)/r.ALUBytesPerSec), fn)
}

func (r *Ring) validate(buffers [][]float32) {
	if len(buffers) != r.p {
		panic(fmt.Sprintf("collective: %d buffers for %d participants", len(buffers), r.p))
	}
	for i, b := range buffers {
		if len(b) != len(buffers[0]) {
			panic(fmt.Sprintf("collective: buffer %d length %d != %d", i, len(b), len(buffers[0])))
		}
	}
}

// RingBytesPerParticipant returns the total bytes each participant sends
// in a full allreduce of n payload bytes: 2(p-1)/p * n, the paper's
// Section III-F traffic model.
func RingBytesPerParticipant(n int64, p int) int64 {
	if p <= 1 {
		return 0
	}
	return 2 * (int64(p) - 1) * n / int64(p)
}
