package experiments

import (
	"fmt"

	"coarse/internal/cci"
	"coarse/internal/core"
	"coarse/internal/metrics"
	"coarse/internal/model"
	"coarse/internal/runner"
	"coarse/internal/topology"
	"coarse/internal/train"
)

// throughputCell formats a throughput table cell.
func throughputCell(res *runner.Result) string {
	return fmt.Sprintf("%.1f samples/s", res.Train.Throughput())
}

// Fig16 reproduces the training-speedup panels: (a-d) speedup over
// DENSE per machine and model, (e) single-node BERT-Large batch scaling
// against AllReduce, (f) two-node training.
func Fig16() Experiment {
	return Experiment{
		ID:    "fig16",
		Title: "Figure 16: DL training speedup",
		Paper: "COARSE 3.3-4.3x (ResNet) / 10.8-13.8x (BERT) over DENSE; 48.3% over AllReduce at batch 4; 42.7% multi-node",
		Run: func(cfg Config) *Report {
			rs := &runSet{}
			// Panels a-d: speedup normalized to DENSE, plus the paper's
			// additional 2:1 configuration (each memory device shared by
			// two workers).
			type panelIDs struct {
				p      panel
				m      *model.Model
				strats []string
				twoOne string
			}
			var panels []panelIDs
			for _, p := range singleNodePanels() {
				m := evalModel(p.model)
				ids := panelIDs{p: p, m: m}
				for _, strat := range strategyNames {
					ids.strats = append(ids.strats, rs.add(stdSpec(cfg, p.spec, m, p.batch, strat)))
				}
				ids.twoOne = rs.add(stdSpec(cfg, topology.TwoToOne(p.spec), m, p.batch, "COARSE"))
				panels = append(panels, ids)
			}
			efPanels := fig16efPanels(cfg, rs)

			got, records := rs.results(cfg)
			rep := &Report{Records: records}
			for _, ids := range panels {
				tab := metrics.NewTable(
					fmt.Sprintf("Figure 16%s: %s %s batch %d (speedup vs DENSE)", ids.p.id, ids.p.spec.Label, ids.m.Name, ids.p.batch),
					"strategy", "iter time", "throughput", "speedup")
				var denseIter float64
				for i, strat := range strategyNames {
					res := got[ids.strats[i]]
					if !res.OK() {
						tab.AddRow(strat, "OOM", "-", "-")
						continue
					}
					if strat == "DENSE" {
						denseIter = res.Train.IterTime.ToSeconds()
					}
					tab.AddRow(strat, metrics.Ms(res.Train.IterTime), throughputCell(res),
						metrics.Speedup(denseIter/res.Train.IterTime.ToSeconds()))
				}
				if res := got[ids.twoOne]; res.OK() {
					tab.AddRow("COARSE 2:1", metrics.Ms(res.Train.IterTime), throughputCell(res),
						metrics.Speedup(denseIter/res.Train.IterTime.ToSeconds()))
				}
				rep.add(tab)
			}
			rep.add(renderFig16ef(efPanels, got)...)
			return rep
		},
	}
}

// efRow is one row of the BERT-Large batch-scaling panels.
type efRow struct {
	spec  topology.Spec
	strat string
	batch int
	id    string
}

type efPanel struct {
	title string
	rows  []efRow
	base  int // index of the normalization row
}

// fig16efPanels registers the BERT-Large batch-scaling runs. DENSE is
// not a baseline here ("DENSE does not assume a multi-node system");
// speedups normalize to AllReduce at its feasible batch.
func fig16efPanels(cfg Config, rs *runSet) []efPanel {
	bert := evalModel("BERT-Large")
	panels := []efPanel{
		{
			title: "Figure 16e: single-node BERT-Large (vs AllReduce b2)",
			rows: []efRow{
				{spec: topology.AWSV100(), strat: "AllReduce", batch: 2},
				{spec: topology.AWSV100(), strat: "AllReduce", batch: 4},
				{spec: topology.AWSV100(), strat: "COARSE", batch: 2},
				{spec: topology.AWSV100(), strat: "COARSE", batch: 4},
			},
		},
		{
			title: "Figure 16f: two-node BERT-Large (vs 2-node AllReduce b2)",
			rows: []efRow{
				{spec: topology.MultiNodeV100(2), strat: "AllReduce", batch: 2},
				{spec: topology.MultiNodeV100(2), strat: "AllReduce", batch: 4},
				{spec: topology.MultiNodeV100(2), strat: "COARSE", batch: 4},
				{spec: topology.AWSV100(), strat: "COARSE", batch: 4}, // single-node comparison row
			},
		},
	}
	for pi := range panels {
		for ri := range panels[pi].rows {
			r := &panels[pi].rows[ri]
			r.id = rs.add(stdSpec(cfg, r.spec, bert, r.batch, r.strat))
		}
	}
	return panels
}

// renderFig16ef renders the registered batch-scaling panels.
func renderFig16ef(panels []efPanel, got map[string]*runner.Result) []*metrics.Table {
	var tables []*metrics.Table
	for _, p := range panels {
		tab := metrics.NewTable(p.title,
			"machine", "strategy", "batch", "iter time", "throughput", "vs baseline")
		var base float64
		for i, r := range p.rows {
			res := got[r.id]
			if !res.OK() {
				tab.AddRow(r.spec.Label, r.strat, r.batch, "OOM (replica does not fit)", "-", "-")
				continue
			}
			if i == p.base {
				base = res.Train.Throughput()
			}
			tab.AddRow(r.spec.Label, r.strat, r.batch, metrics.Ms(res.Train.IterTime),
				throughputCell(res), metrics.Pct(res.Train.Throughput()/base-1))
		}
		tables = append(tables, tab)
	}
	return tables
}

// Fig17 reproduces the blocked-communication-time breakdown: panels a-d
// normalized to DENSE's blocked time, panels e-f normalized to
// AllReduce's. Its runs share cache keys with Figure 16, so rendering
// both figures costs one set of simulations.
func Fig17() Experiment {
	return Experiment{
		ID:    "fig17",
		Title: "Figure 17: blocked communication time",
		Paper: "AllReduce and COARSE block <10% of DENSE; COARSE 20-42% below AllReduce on V100/P100 BERT, 18-20% above on T4",
		Run: func(cfg Config) *Report {
			rs := &runSet{}
			type panelIDs struct {
				p      panel
				m      *model.Model
				strats []string
			}
			var panels []panelIDs
			for _, p := range singleNodePanels() {
				m := evalModel(p.model)
				ids := panelIDs{p: p, m: m}
				for _, strat := range strategyNames {
					ids.strats = append(ids.strats, rs.add(stdSpec(cfg, p.spec, m, p.batch, strat)))
				}
				panels = append(panels, ids)
			}
			// Panels e-f: BERT-Large, normalized to AllReduce.
			bert := evalModel("BERT-Large")
			type efIDs struct {
				spec   topology.Spec
				ar     string
				coarse []string // per batch 2, 4
			}
			var efs []efIDs
			for _, spec := range []topology.Spec{topology.AWSV100(), topology.MultiNodeV100(2)} {
				ids := efIDs{spec: spec, ar: rs.add(stdSpec(cfg, spec, bert, 2, "AllReduce"))}
				for _, batch := range []int{2, 4} {
					ids.coarse = append(ids.coarse, rs.add(stdSpec(cfg, spec, bert, batch, "COARSE")))
				}
				efs = append(efs, ids)
			}

			got, records := rs.results(cfg)
			rep := &Report{Records: records}
			for _, ids := range panels {
				tab := metrics.NewTable(
					fmt.Sprintf("Figure 17%s: %s %s blocked communication (normalized to DENSE)", ids.p.id, ids.p.spec.Label, ids.m.Name),
					"strategy", "blocked/iter", "normalized", "GPU util")
				var dense float64
				for i, strat := range strategyNames {
					res := got[ids.strats[i]]
					if !res.OK() {
						tab.AddRow(strat, "OOM", "-", "-")
						continue
					}
					if strat == "DENSE" {
						dense = res.Train.BlockedComm.ToSeconds()
					}
					tab.AddRow(strat, metrics.Ms(res.Train.BlockedComm),
						metrics.Pct(res.Train.BlockedComm.ToSeconds()/dense),
						metrics.Pct(res.Train.GPUUtil))
				}
				rep.add(tab)
			}
			for _, ids := range efs {
				ar := got[ids.ar]
				if !ar.OK() {
					continue
				}
				tab := metrics.NewTable(
					fmt.Sprintf("Figure 17e/f: %s BERT-Large blocked communication (normalized to AllReduce)", ids.spec.Label),
					"strategy", "batch", "blocked/iter", "normalized")
				tab.AddRow("AllReduce", 2, metrics.Ms(ar.Train.BlockedComm), metrics.Pct(1))
				for i, batch := range []int{2, 4} {
					res := got[ids.coarse[i]]
					if !res.OK() {
						tab.AddRow("COARSE", batch, "OOM", "-")
						continue
					}
					tab.AddRow("COARSE", batch, metrics.Ms(res.Train.BlockedComm),
						metrics.Pct(res.Train.BlockedComm.ToSeconds()/ar.Train.BlockedComm.ToSeconds()))
				}
				rep.add(tab)
			}
			return rep
		},
	}
}

// Fig10 demonstrates the FCFS synchronization deadlock and its
// queue-based avoidance on the 2:1 shared-proxy machine.
func Fig10() Experiment {
	return Experiment{
		ID:    "fig10",
		Title: "Figure 10: FCFS deadlock vs queue-based synchronization",
		Paper: "FCFS deadlocks when a proxy is shared; per-client queues avoid it",
		Run: func(cfg Config) *Report {
			rs := &runSet{}
			m := model.MLP("crossed", 1024, 1024, 1024, 1024)
			type row struct{ name, id string }
			var rows []row
			for _, sched := range []core.Scheduler{core.FCFS, core.QueueBased} {
				name := "queue-based"
				if sched == core.FCFS {
					name = "FCFS"
				}
				rows = append(rows, row{name, rs.add(runner.Spec{
					ID:         "fig10/" + name,
					Topology:   topology.AWSV100TwoToOne(),
					Model:      m,
					Batch:      2,
					Iterations: 2,
					NewStrategy: func() train.Strategy {
						opts := core.DefaultOptions()
						opts.Scheduler = sched
						opts.ReprofileEvery = 0
						opts.MFraction = 1.0 // everything through the proxies
						return core.New(opts)
					},
				})})
			}
			got, records := rs.results(cfg)
			tab := metrics.NewTable("Figure 10: proxy scheduling on the 2:1 machine",
				"scheduler", "outcome", "iterations done")
			for _, r := range rows {
				res := got[r.id]
				if !res.OK() {
					tab.AddRow(r.name, "DEADLOCK: "+res.Err, 0)
					continue
				}
				tab.AddRow(r.name, "completed in "+metrics.Ms(res.Train.TotalTime), res.Train.Iterations)
			}
			return &Report{Tables: []*metrics.Table{tab}, Records: records}
		},
	}
}

// coarseVariantSpec builds an uncached runner spec for a COARSE run
// with custom options (ablations bypass the shared cache since options
// differ); probe pulls strategy counters into the result.
func coarseVariantSpec(cfg Config, id string, spec topology.Spec, m *model.Model, batch int, opts core.Options, probe func(*core.Strategy, *runner.Result)) runner.Spec {
	return runner.Spec{
		ID:          id,
		Topology:    spec,
		Model:       m,
		Batch:       batch,
		Iterations:  cfg.iterations(),
		NewStrategy: func() train.Strategy { return core.New(opts) },
		Probe: func(p *runner.Probe) {
			if probe != nil {
				probe(p.Strategy.(*core.Strategy), p.Result)
			}
		},
	}
}

// AblationRouting compares bandwidth-aware routing against always-local
// routing on the anti-local machine.
func AblationRouting() Experiment {
	return Experiment{
		ID:    "ablation-routing",
		Title: "Ablation: tensor routing",
		Paper: "routing exploits anti-locality; disabling it forfeits the remote-bandwidth win",
		Run: func(cfg Config) *Report {
			rs := &runSet{}
			var ids []string
			routings := []bool{true, false}
			for _, routing := range routings {
				opts := core.DefaultOptions()
				opts.Routing = routing
				// Proxy everything so the routed path carries the full
				// synchronization load and the mechanism's effect is
				// visible in isolation.
				opts.MFraction = 1.0
				ids = append(ids, rs.add(coarseVariantSpec(cfg,
					fmt.Sprintf("ablation-routing/%v", routing),
					topology.AWSV100(), evalModel("BERT"), 2, opts,
					func(s *core.Strategy, res *runner.Result) {
						res.SetExtra("pushed_to_bw", byteSize(s.PushedToBw))
					})))
			}
			got, records := rs.results(cfg)
			tab := metrics.NewTable("Ablation: routing on AWS V100, BERT batch 2 (all tensors proxied)",
				"routing", "iter time", "blocked/iter", "bytes to remote proxies")
			for i, routing := range routings {
				res := got[ids[i]]
				if !res.OK() {
					tab.AddRow(fmt.Sprint(routing), "ERR", res.Err, "-")
					continue
				}
				tab.AddRow(fmt.Sprint(routing), metrics.Ms(res.Train.IterTime),
					metrics.Ms(res.Train.BlockedComm), res.Extra["pushed_to_bw"])
			}
			return &Report{Tables: []*metrics.Table{tab}, Records: records}
		},
	}
}

// AblationPartitioning compares shard partitioning against whole-tensor
// pushes.
func AblationPartitioning() Experiment {
	return Experiment{
		ID:    "ablation-partition",
		Title: "Ablation: tensor partitioning",
		Paper: "partitioning pipelines push/pull and keeps both bus directions busy",
		Run: func(cfg Config) *Report {
			rs := &runSet{}
			var ids []string
			parts := []bool{true, false}
			for _, part := range parts {
				opts := core.DefaultOptions()
				opts.Partitioning = part
				opts.MFraction = 1.0
				ids = append(ids, rs.add(coarseVariantSpec(cfg,
					fmt.Sprintf("ablation-partition/%v", part),
					topology.AWSV100(), evalModel("BERT"), 2, opts, nil)))
			}
			got, records := rs.results(cfg)
			tab := metrics.NewTable("Ablation: partitioning on AWS V100, BERT batch 2 (all tensors proxied)",
				"partitioning", "iter time", "blocked/iter")
			for i, part := range parts {
				res := got[ids[i]]
				if !res.OK() {
					tab.AddRow(fmt.Sprint(part), "ERR", res.Err)
					continue
				}
				tab.AddRow(fmt.Sprint(part), metrics.Ms(res.Train.IterTime), metrics.Ms(res.Train.BlockedComm))
			}
			return &Report{Tables: []*metrics.Table{tab}, Records: records}
		},
	}
}

// AblationDualSync sweeps the dual-synchronization split m.
func AblationDualSync() Experiment {
	return Experiment{
		ID:    "ablation-dual",
		Title: "Ablation: dual synchronization split",
		Paper: "Equation (1): balancing GPU and proxy paths beats either extreme",
		Run: func(cfg Config) *Report {
			rs := &runSet{}
			var ids []string
			fractions := []float64{-1, 0, 0.25, 0.5, 0.75, 1.0}
			for _, mf := range fractions {
				opts := core.DefaultOptions()
				opts.MFraction = mf
				ids = append(ids, rs.add(coarseVariantSpec(cfg,
					fmt.Sprintf("ablation-dual/%g", mf),
					topology.AWSV100(), evalModel("BERT"), 2, opts,
					func(s *core.Strategy, res *runner.Result) {
						res.SetExtra("m_bytes", byteSize(s.MBytes()))
					})))
			}
			got, records := rs.results(cfg)
			tab := metrics.NewTable("Ablation: dual-sync split on AWS V100, BERT batch 2",
				"m fraction", "m", "iter time", "blocked/iter")
			for i, mf := range fractions {
				res := got[ids[i]]
				if !res.OK() {
					tab.AddRow(fmt.Sprint(mf), "-", "ERR", res.Err)
					continue
				}
				label := fmt.Sprintf("%.2f", mf)
				if mf < 0 {
					label = "auto (planner)"
				}
				tab.AddRow(label, res.Extra["m_bytes"], metrics.Ms(res.Train.IterTime), metrics.Ms(res.Train.BlockedComm))
			}
			return &Report{Tables: []*metrics.Table{tab}, Records: records}
		},
	}
}

// AblationSharing shows DENSE's coherence penalty growing with sharers
// — the scalability argument for decentralization (Section III-D).
func AblationSharing() Experiment {
	return Experiment{
		ID:    "ablation-sharing",
		Title: "Ablation: DENSE coherence sharing penalty",
		Paper: "coherence traffic grows with sharers, shrinking payload bandwidth",
		Run: func(cfg Config) *Report {
			tab := metrics.NewTable("Ablation: DENSE port bandwidth vs sharers",
				"sharers", "effective read bw", "effective write bw")
			cciP := cci.DefaultParams()
			type row struct{ read, write float64 }
			rows := runner.Map(cfg.Parallel, 8, func(i int) row {
				sharers := i + 1
				return row{
					read:  cciP.SharingPenalty(cciP.LoadStoreBandwidth(false), sharers),
					write: cciP.SharingPenalty(cciP.LoadStoreBandwidth(true), sharers),
				}
			})
			for i, r := range rows {
				tab.AddRow(i+1, metrics.GBps(r.read), metrics.GBps(r.write))
			}
			return &Report{Tables: []*metrics.Table{tab}}
		},
	}
}
