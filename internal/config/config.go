// Package config loads training scenarios from JSON so coarsesim can
// run custom machines and sweeps without recompilation: a scenario
// names a machine preset (optionally overriding its link parameters),
// a model, batch size, iteration count and strategies.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"coarse/internal/model"
	"coarse/internal/topology"
)

// Scenario is one training configuration.
type Scenario struct {
	// Machine names a preset: t4, sdsc, v100, v100-2to1, v100-nvlink,
	// multi.
	Machine string `json:"machine"`
	// Nodes overrides the node count for the multi preset.
	Nodes int `json:"nodes,omitempty"`
	// Overrides adjusts preset fields; zero values keep the preset's.
	Overrides *SpecOverrides `json:"overrides,omitempty"`
	// Model names the workload: resnet50, bert-base, bert-large, vgg16,
	// or mlp:IN,HIDDEN...,OUT.
	Model string `json:"model"`
	// Batch is the per-GPU batch size.
	Batch int `json:"batch"`
	// Iterations is the simulated iteration count.
	Iterations int `json:"iterations"`
	// Strategies lists the schemes to run; empty means all four.
	Strategies []string `json:"strategies,omitempty"`
	// ComputeJitter spreads per-worker compute speed (stragglers).
	ComputeJitter float64 `json:"compute_jitter,omitempty"`
}

// SpecOverrides are optional machine-parameter overrides, in the
// paper's units (GB/s for bandwidths, ns for latencies).
type SpecOverrides struct {
	EdgeGBps  float64 `json:"edge_gbps,omitempty"`
	PeerGBps  float64 `json:"peer_gbps,omitempty"`
	UpGBps    float64 `json:"up_gbps,omitempty"`
	HostGBps  float64 `json:"host_gbps,omitempty"`
	CCIGBps   float64 `json:"cci_gbps,omitempty"`
	NetGBps   float64 `json:"net_gbps,omitempty"`
	GPUMemGiB int64   `json:"gpu_mem_gib,omitempty"`
	GPUTFLOPS float64 `json:"gpu_tflops,omitempty"`
}

// Presets maps machine names to constructors.
func presets(nodes int) map[string]func() topology.Spec {
	if nodes < 2 {
		nodes = 2
	}
	return map[string]func() topology.Spec{
		"t4":          topology.AWST4,
		"sdsc":        topology.SDSCP100,
		"v100":        topology.AWSV100,
		"v100-2to1":   topology.AWSV100TwoToOne,
		"v100-nvlink": topology.AWSV100NVLink,
		"multi":       func() topology.Spec { return topology.MultiNodeV100(nodes) },
	}
}

// Load reads a scenario file.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Read parses a scenario from JSON.
func Read(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the scenario's fields.
func (s *Scenario) Validate() error {
	if _, ok := presets(s.Nodes)[s.Machine]; !ok {
		return fmt.Errorf("config: unknown machine %q", s.Machine)
	}
	if _, err := s.BuildModel(); err != nil {
		return err
	}
	if s.Batch < 1 {
		return fmt.Errorf("config: batch %d", s.Batch)
	}
	if s.Iterations < 1 {
		return fmt.Errorf("config: iterations %d", s.Iterations)
	}
	for _, st := range s.Strategies {
		switch st {
		case "DENSE", "AllReduce", "COARSE", "CentralPS":
		default:
			return fmt.Errorf("config: unknown strategy %q", st)
		}
	}
	if s.ComputeJitter < 0 {
		return fmt.Errorf("config: negative jitter")
	}
	return nil
}

// BuildSpec constructs the machine spec with overrides applied.
func (s *Scenario) BuildSpec() topology.Spec {
	spec := presets(s.Nodes)[s.Machine]()
	if o := s.Overrides; o != nil {
		set := func(dst *float64, gbps float64) {
			if gbps > 0 {
				*dst = gbps * topology.GB
			}
		}
		set(&spec.EdgeBW, o.EdgeGBps)
		set(&spec.PeerBW, o.PeerGBps)
		set(&spec.UpBW, o.UpGBps)
		set(&spec.HostBW, o.HostGBps)
		set(&spec.CCIRingBW, o.CCIGBps)
		set(&spec.NetBW, o.NetGBps)
		if o.GPUMemGiB > 0 {
			spec.GPU.MemBytes = o.GPUMemGiB << 30
		}
		if o.GPUTFLOPS > 0 {
			spec.GPU.TFLOPS = o.GPUTFLOPS
		}
	}
	return spec
}

// BuildModel constructs the workload model.
func (s *Scenario) BuildModel() (*model.Model, error) {
	switch s.Model {
	case "resnet50":
		return model.ResNet50(), nil
	case "bert-base":
		return model.BERTBase(), nil
	case "bert-large":
		return model.BERTLarge(), nil
	case "vgg16":
		return model.VGG16(), nil
	}
	if strings.HasPrefix(s.Model, "mlp:") {
		parts := strings.Split(s.Model[4:], ",")
		var sizes []int
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("config: bad mlp sizes in %q", s.Model)
			}
			sizes = append(sizes, v)
		}
		if len(sizes) < 2 {
			return nil, fmt.Errorf("config: mlp needs >=2 sizes in %q", s.Model)
		}
		return model.MLP("mlp", sizes...), nil
	}
	return nil, fmt.Errorf("config: unknown model %q", s.Model)
}

// StrategyNames returns the scenario's strategies, defaulting to all.
func (s *Scenario) StrategyNames() []string {
	if len(s.Strategies) > 0 {
		return s.Strategies
	}
	return []string{"CentralPS", "DENSE", "AllReduce", "COARSE"}
}
