package train

import (
	"coarse/internal/parallel"
)

// groupInfo is the trainer's bound view of the parallelism plan: which
// reduction tree each (worker, layer) joins, each tree's membership and
// layer list, and the per-tree gradient volumes. On the trivial
// (data-parallel) path plan is nil and the accessors answer with the
// historical single-tree view — all workers, full layer volumes — so
// strategies written against them behave identically to the unsharded
// code they replaced.
type groupInfo struct {
	plan *parallel.Plan

	// Trivial-path caches (plan == nil).
	allWorkers []int
	allLayers  []int
}

func newGroupInfo(plan *parallel.Plan, workers, layers int) *groupInfo {
	gi := &groupInfo{plan: plan}
	if plan == nil {
		gi.allWorkers = make([]int, workers)
		for i := range gi.allWorkers {
			gi.allWorkers[i] = i
		}
		gi.allLayers = make([]int, layers)
		for i := range gi.allLayers {
			gi.allLayers[i] = i
		}
	}
	return gi
}

// Plan returns the bound parallelism plan, or nil on the trivial
// data-parallel path. Strategies with bespoke historical code (the
// flat worker ring, the COARSE GPU ring) branch on this to keep the
// trivial path byte-identical.
func (c *Ctx) Plan() *parallel.Plan { return c.trainer.groups.plan }

// LayerGroupID returns the id of the gradient reduction tree worker w
// joins for a layer: 0 (the single all-worker tree) on the trivial
// path, the plan's tree otherwise, -1 when w's stage does not own the
// layer.
func (c *Ctx) LayerGroupID(w, layer int) int {
	gi := c.trainer.groups
	if gi.plan == nil {
		return 0
	}
	return gi.plan.GroupID(w, layer)
}

// GroupMembers returns a reduction tree's sorted membership; tree 0 on
// the trivial path is every worker.
func (c *Ctx) GroupMembers(gid int) []int {
	gi := c.trainer.groups
	if gi.plan == nil {
		return gi.allWorkers
	}
	return gi.plan.GroupMembers(gid)
}

// GroupLayers returns the layers a reduction tree reduces, in forward
// order; tree 0 on the trivial path reduces every layer.
func (c *Ctx) GroupLayers(gid int) []int {
	gi := c.trainer.groups
	if gi.plan == nil {
		return gi.allLayers
	}
	return gi.plan.GroupLayers(gid)
}

// LayerSyncBytes returns the gradient volume one reduction tree of a
// layer carries: the full tensor on the trivial path, the per-worker
// shard under tensor/expert sharding.
func (c *Ctx) LayerSyncBytes(layer int) int64 {
	gi := c.trainer.groups
	if gi.plan == nil {
		return c.Layers()[layer].SizeBytes()
	}
	return gi.plan.SyncBytes(layer)
}

// SyncTrees counts the (layer, tree) synchronization completions per
// iteration: the layer count on the trivial path, the plan's total
// otherwise. Strategies count an iteration finished when this many
// tree reductions have retired.
func (c *Ctx) SyncTrees() int {
	gi := c.trainer.groups
	if gi.plan == nil {
		return len(c.Layers())
	}
	return gi.plan.SyncTrees()
}

// CommStats totals the sharded-layout communication volumes by class —
// the conservation quantities the parallelism-equivalence tests check
// against the plan's analytic sums. All zero on the trivial path (the
// historical code paths do not report here).
type CommStats struct {
	// DPReduce is the gradient bytes handed to grouped tree reductions
	// (each tree's payload counted once, before ring/hierarchy fan-out).
	DPReduce int64
	// TPReduce is the tensor-parallel activation reduction payload.
	TPReduce int64
	// PPActs is the activation/gradient bytes crossing stage boundaries.
	PPActs int64
	// EPTokens is the MoE all-to-all payload (off-diagonal, both the
	// dispatch and the combine exchange).
	EPTokens int64
}

// CommStats returns the run's sharded-communication totals.
func (t *Trainer) CommStats() CommStats { return t.stats }

// SyncComm returns the cached collective communicator for one gradient
// reduction tree, planning its algorithm on first use. Only meaningful
// under a non-trivial layout; strategies on the trivial path keep
// their historical communicators.
func (c *Ctx) SyncComm(gid int) *GroupComm {
	t := c.trainer
	if t.syncComms == nil {
		t.syncComms = make(map[int]*GroupComm)
	}
	gc, ok := t.syncComms[gid]
	if !ok {
		gc = NewGroupComm(c, c.GroupMembers(gid))
		t.syncComms[gid] = gc
	}
	return gc
}
