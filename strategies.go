package coarse

import (
	"coarse/internal/paramserver"
	"coarse/internal/train"
)

// paramserverCentral and paramserverDENSE isolate the baseline
// constructors so coarse.go reads as the API surface.
func paramserverCentral() train.Strategy { return paramserver.NewCentralPS() }

func paramserverDENSE() train.Strategy { return paramserver.NewDENSE() }
