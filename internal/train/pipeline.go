package train

import (
	"fmt"

	"coarse/internal/parallel"
)

// The sharded-layout driver: each worker runs its pipeline stage's
// layer slice on a microbatched 1F1B schedule — warmup forwards, a
// steady forward/backward interleave, then the backward drain.
// Activations cross stage boundaries as tagged DMA transfers that open
// the receiver's per-microbatch latch; tensor-parallel groups
// rendezvous for per-layer activation all-reduces; expert-parallel MoE
// layers rendezvous for seeded top-k routed all-to-alls. Gradient
// synchronization stays with the strategy: once a layer's last
// microbatch backward retires, GradientReady fires exactly as on the
// data-parallel path, and the strategy reduces over the plan's tree.
//
// Non-trivial layouts run the engine unpartitioned (New gates the
// rack-partitioned core off), so these callbacks run single-threaded
// and may touch shared trainer state freely.

// pipeOp is one in-flight group rendezvous: members arrive, the last
// arrival launches the collective, completion resumes everyone.
type pipeOp struct {
	arrived int
	waiters []func()
}

// joinOp registers one member's arrival at a rendezvous point. The
// members-th arrival launches the collective; its completion resumes
// every registered waiter.
func (t *Trainer) joinOp(key [5]int, members int, launch func(done func()), resume func()) {
	op := t.pipeOps[key]
	if op == nil {
		op = &pipeOp{}
		t.pipeOps[key] = op
	}
	op.waiters = append(op.waiters, resume)
	op.arrived++
	if op.arrived == members {
		delete(t.pipeOps, key)
		ws := op.waiters
		launch(func() {
			for _, fn := range ws {
				fn()
			}
		})
	}
}

// Rendezvous phases disambiguating the (it, mb, layer) coordinate.
const (
	phaseFwdTP = iota
	phaseBwdTP
	phaseMoEDispatch    // forward token dispatch
	phaseMoECombine     // forward expert-output return
	phaseMoEBwdCombine  // backward of the combine (dispatch-direction)
	phaseMoEBwdDispatch // backward of the dispatch (combine-direction)
)

// pipeLatch returns the (worker, iteration, microbatch, slot) latch;
// slot 0 gates on the previous stage's activations, slot 1 on the next
// stage's boundary gradients.
func (t *Trainer) pipeLatch(w, it, mb, slot int) *Latch {
	micro := t.groups.plan.Micro
	return &t.pipeLatches[((w*t.cfg.Iterations+it)*micro+mb)*2+slot]
}

func (t *Trainer) tpComm(base int, members []int) *GroupComm {
	gc, ok := t.tpComms[base]
	if !ok {
		gc = newGroupComm(t.ctx, members, &t.stats.TPReduce)
		t.tpComms[base] = gc
	}
	return gc
}

func (t *Trainer) epComm(base int, members []int) *GroupComm {
	gc, ok := t.epComms[base]
	if !ok {
		gc = newGroupComm(t.ctx, members, nil)
		t.epComms[base] = gc
	}
	return gc
}

// runPipeWorker drives one worker's iteration under a non-trivial
// layout.
func (t *Trainer) runPipeWorker(w, it int) {
	if it == t.cfg.Iterations {
		return
	}
	ctx := t.ctx
	plan := t.groups.plan
	sch := t.scheds[w]
	g := ctx.Workers[w]
	c := plan.Coords[w]
	micro := plan.Micro
	mbSize := t.cfg.Batch / micro
	stage := plan.Stages[c.PP]
	warmup := plan.PP - 1 - c.PP
	if warmup > micro {
		warmup = micro
	}
	track := fmt.Sprintf("worker %d", w)

	wait := func(l *Latch, what string, next func()) {
		arrived := sch.Now()
		l.Wait(func() {
			if stall := sch.Now() - arrived; stall > 0 {
				t.blocked[w] += stall
				t.cfg.Trace.Span(track, "stall", what, arrived, sch.Now())
			}
			next()
		})
	}

	// tpStep rendezvouses the TP group for one layer's activation (or
	// activation-gradient) all-reduce: the partial sums every
	// tensor-parallel rank holds after its sharded matmul.
	tpStep := func(l, mb, phase int, next func()) {
		if plan.TP == 1 {
			next()
			return
		}
		members := plan.TPGroup(w)
		base := members[0]
		comm := t.tpComm(base, members)
		vol := ctx.Layers()[l].ActBytes * int64(mbSize)
		arrived := sch.Now()
		t.joinOp([5]int{base, it, mb, l, phase}, len(members), func(done func()) {
			comm.AllReduceBytes(vol, done)
		}, func() {
			if stall := sch.Now() - arrived; stall > 0 {
				t.blocked[w] += stall
			}
			next()
		})
	}

	// moeStep rendezvouses the EP group for one all-to-all exchange of
	// an expert layer. The routing matrix is a pure function of (seed,
	// it, mb, layer, group), so every member computes the same exchange.
	moeStep := func(l, mb, phase int, next func()) {
		layer := ctx.Layers()[l]
		if layer.MoE == nil || plan.EP == 1 {
			next()
			return
		}
		members := plan.EPGroup(w)
		base := members[0]
		comm := t.epComm(base, members)
		arrived := sch.Now()
		t.joinOp([5]int{base, it, mb, l, phase}, len(members), func(done func()) {
			router := parallel.Router{
				Seed:    t.cfg.Seed,
				Experts: layer.MoE.Experts,
				TopK:    layer.MoE.TopK,
				Ranks:   plan.EP,
			}
			bpt := layer.ActBytes / int64(2*layer.MoE.Tokens)
			if bpt < 1 {
				bpt = 1
			}
			mat := router.Matrix(it, mb, l, base, layer.MoE.Tokens*mbSize, bpt)
			if phase == phaseMoECombine || phase == phaseMoEBwdDispatch {
				mat = parallel.Transpose(mat)
			}
			comm.AllToAll(mat, done)
		}, func() {
			if stall := sch.Now() - arrived; stall > 0 {
				t.blocked[w] += stall
			}
			next()
		})
	}

	fwdMB := func(mb int, done func()) {
		var runLayer func(idx int)
		runLayer = func(idx int) {
			if idx == len(stage) {
				if next := plan.PPNext(w); next >= 0 {
					size := plan.BoundaryBytes(c.PP) * int64(mbSize)
					t.stats.PPActs += size
					lat := t.pipeLatch(next, it, mb, 0)
					ctx.CCI.DMACopyTagged(&t.actTags[w], g.Dev, ctx.Workers[next].Dev, size, func() {
						lat.Open()
					})
				}
				done()
				return
			}
			l := stage[idx]
			layer := ctx.Layers()[l]
			wait(t.latch(it, w, l), "wait params "+layer.Name, func() {
				moeStep(l, mb, phaseMoEDispatch, func() {
					start := sch.Now()
					dur := g.LayerFwdTime(plan.LayerShard(l), mbSize)
					sch.At(t.chaos.AdvanceCompute(w, start, dur), func() {
						t.compute[w] += dur
						if lag := sch.Now() - start - dur; lag > 0 {
							sch.Defer(func() { t.chaos.NoteWorkerStall(lag) })
						}
						t.cfg.Trace.Span(track, "compute", "fwd "+layer.Name, start, sch.Now())
						moeStep(l, mb, phaseMoECombine, func() {
							tpStep(l, mb, phaseFwdTP, func() { runLayer(idx + 1) })
						})
					})
				})
			})
		}
		if c.PP > 0 {
			wait(t.pipeLatch(w, it, mb, 0), fmt.Sprintf("wait acts mb%d", mb), func() { runLayer(0) })
		} else {
			runLayer(0)
		}
	}

	bwdMB := func(mb int, done func()) {
		var runLayer func(idx int)
		runLayer = func(idx int) {
			if idx < 0 {
				if prev := plan.PPPrev(w); prev >= 0 {
					size := plan.BoundaryBytes(c.PP-1) * int64(mbSize)
					t.stats.PPActs += size
					lat := t.pipeLatch(prev, it, mb, 1)
					ctx.CCI.DMACopyTagged(&t.gradTags[w], g.Dev, ctx.Workers[prev].Dev, size, func() {
						lat.Open()
					})
				}
				done()
				return
			}
			l := stage[idx]
			layer := ctx.Layers()[l]
			start := sch.Now()
			dur := g.LayerBwdTime(plan.LayerShard(l), mbSize)
			sch.At(t.chaos.AdvanceCompute(w, start, dur), func() {
				t.compute[w] += dur
				if lag := sch.Now() - start - dur; lag > 0 {
					sch.Defer(func() { t.chaos.NoteWorkerStall(lag) })
				}
				t.cfg.Trace.Span(track, "compute", "bwd "+layer.Name, start, sch.Now())
				moeStep(l, mb, phaseMoEBwdCombine, func() {
					tpStep(l, mb, phaseBwdTP, func() {
						moeStep(l, mb, phaseMoEBwdDispatch, func() {
							t.gradCount[w][idx]++
							if t.gradCount[w][idx] == micro {
								sch.Defer(func() { t.strat.GradientReady(it, w, l) })
							}
							runLayer(idx - 1)
						})
					})
				})
			})
		}
		if c.PP < plan.PP-1 {
			wait(t.pipeLatch(w, it, mb, 1), fmt.Sprintf("wait grads mb%d", mb), func() { runLayer(len(stage) - 1) })
		} else {
			runLayer(len(stage) - 1)
		}
	}

	for i := range t.gradCount[w] {
		t.gradCount[w][i] = 0
	}
	fwdDone, bwdDone := 0, 0
	var step func()
	step = func() {
		switch {
		case fwdDone < warmup:
			mb := fwdDone
			fwdDone++
			fwdMB(mb, step)
		case fwdDone < micro:
			mb := fwdDone
			fwdDone++
			fwdMB(mb, func() {
				mb2 := bwdDone
				bwdDone++
				bwdMB(mb2, step)
			})
		case bwdDone < micro:
			mb := bwdDone
			bwdDone++
			bwdMB(mb, step)
		default:
			end := int64(sch.Now())
			for {
				cur := t.iterEnd[it].Load()
				if end <= cur || t.iterEnd[it].CompareAndSwap(cur, end) {
					break
				}
			}
			t.workerDone[w] = it + 1
			t.runPipeWorker(w, it+1)
		}
	}
	step()
}
