package serve

import (
	"encoding/json"
	"testing"

	"coarse/internal/chaos"
	"coarse/internal/model"
	"coarse/internal/sim"
	"coarse/internal/topology"
)

func testConfig(placement KVPlacement) Config {
	cfg := DefaultConfig(topology.AWSV100(), model.BERTBase(), Workload{
		Arrival:    Poisson,
		RatePerSec: 40,
		Requests:   48,
	})
	cfg.KVPlacement = placement
	cfg.PrefillWorkers = 2
	return cfg
}

// TestServeCompletes: every request finishes, latencies are positive,
// and the bookkeeping adds up — for both placements.
func TestServeCompletes(t *testing.T) {
	for _, placement := range []KVPlacement{KVLocal, KVPooled} {
		placement := placement
		t.Run(placement.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(testConfig(placement))
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != res.Requests || res.Requests != 48 {
				t.Fatalf("completed %d of %d requests", res.Completed, res.Requests)
			}
			if res.TTFT.P50 <= 0 || res.TPOT.P50 <= 0 {
				t.Fatalf("non-positive latency: TTFT p50 %d TPOT p50 %d", res.TTFT.P50, res.TPOT.P50)
			}
			if res.TTFT.P50 > res.TTFT.P99 || res.TTFT.P99 > res.TTFT.P999 {
				t.Fatalf("TTFT percentiles out of order: %+v", res.TTFT)
			}
			if res.AchievedRPS <= 0 || res.GoodputRPS > res.AchievedRPS {
				t.Fatalf("rps bookkeeping wrong: achieved %.2f goodput %.2f", res.AchievedRPS, res.GoodputRPS)
			}
			if res.MeanBatch < 1 {
				t.Fatalf("mean decode batch %.2f < 1", res.MeanBatch)
			}
			if res.KVFabricBytes <= 0 {
				t.Fatalf("no KV bytes crossed the fabric")
			}
			if res.ParamFabricBytes <= 0 {
				t.Fatalf("no shared-parameter bytes crossed the fabric")
			}
		})
	}
}

// TestServeDeterministic: the same config replays to byte-identical
// results (JSON compared), and a different seed changes the outcome.
func TestServeDeterministic(t *testing.T) {
	run := func(seed int64) string {
		cfg := testConfig(KVPooled)
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := run(5), run(5)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if run(6) == a {
		t.Fatalf("seed 5 and 6 produced identical results")
	}
}

// TestServePooledVsLocal: the placements genuinely trade off — pooled
// moves per-step KV traffic over the fabric (more KV bytes), local
// caps decode concurrency at the HBM budget. Their latency profiles
// must differ measurably.
func TestServePooledVsLocal(t *testing.T) {
	local, err := Run(testConfig(KVLocal))
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Run(testConfig(KVPooled))
	if err != nil {
		t.Fatal(err)
	}
	if pooled.KVFabricBytes <= local.KVFabricBytes {
		t.Fatalf("pooled KV fabric bytes %d not above local %d",
			pooled.KVFabricBytes, local.KVFabricBytes)
	}
	if pooled.TPOT.P99 == local.TPOT.P99 && pooled.TTFT.P99 == local.TTFT.P99 {
		t.Fatalf("placements produced identical tails: TTFT p99 %d TPOT p99 %d",
			pooled.TTFT.P99, pooled.TPOT.P99)
	}
}

// TestServeZeroTrafficIdle: a zero-traffic serve cell is byte-identical
// to an idle machine — zero events, zero virtual time — even with a
// chaos spec attached (fault daemons never fire without foreground
// work, mirroring the nil-injector convention).
func TestServeZeroTrafficIdle(t *testing.T) {
	cfg := testConfig(KVPooled)
	cfg.Workload.Requests = 0
	cfg.Chaos = &chaos.Spec{Faults: []chaos.Fault{{
		Kind:     chaos.CCIBrownout,
		Start:    sim.Seconds(0.1),
		Duration: sim.Seconds(1),
		Factor:   0.3,
	}}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 0 || res.TotalTime != 0 {
		t.Fatalf("zero-traffic run dispatched %d events over %d ns; want an idle machine",
			res.Events, res.TotalTime)
	}
	if res.ChaosFaults != 0 || res.ChaosStall != 0 {
		t.Fatalf("chaos fired on an idle machine: %d faults, %d ns stall",
			res.ChaosFaults, res.ChaosStall)
	}
	if res.KVFabricBytes != 0 || res.ParamFabricBytes != 0 {
		t.Fatalf("idle machine moved bytes: kv %d param %d", res.KVFabricBytes, res.ParamFabricBytes)
	}
}

// TestServeBrownoutInflatesTails: a CCI brownout throttling the pool's
// ports during the run inflates pooled-KV tail latency.
func TestServeBrownoutInflatesTails(t *testing.T) {
	base, err := Run(testConfig(KVPooled))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(KVPooled)
	cfg.Chaos = &chaos.Spec{Faults: []chaos.Fault{
		{Kind: chaos.CCIBrownout, Start: 0, Duration: base.TotalTime, Factor: 0.25, Target: 0},
		{Kind: chaos.CCIBrownout, Start: 0, Duration: base.TotalTime, Factor: 0.25, Target: 1},
		{Kind: chaos.CCIBrownout, Start: 0, Duration: base.TotalTime, Factor: 0.25, Target: 2},
		{Kind: chaos.CCIBrownout, Start: 0, Duration: base.TotalTime, Factor: 0.25, Target: 3},
	}}
	browned, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if browned.ChaosFaults == 0 {
		t.Fatalf("brownout plan compiled to nothing")
	}
	if browned.TPOT.P99 <= base.TPOT.P99 {
		t.Fatalf("brownout did not inflate TPOT p99: %d <= %d", browned.TPOT.P99, base.TPOT.P99)
	}
}

// TestServeConfigValidation: impossible configurations fail loudly at
// construction, not mid-run.
func TestServeConfigValidation(t *testing.T) {
	cfg := testConfig(KVLocal)
	cfg.LocalKVBudget = 1 << 20 // one maximal sequence cannot fit
	if _, err := New(cfg); err == nil {
		t.Fatalf("tiny local KV budget accepted")
	}

	cfg = testConfig(KVPooled)
	cfg.PrefillWorkers = 4 // all four GPUs prefill, no decode pool
	if _, err := New(cfg); err == nil {
		t.Fatalf("empty decode pool accepted")
	}

	cfg = testConfig(KVPooled)
	cfg.Model = nil
	if _, err := New(cfg); err == nil {
		t.Fatalf("nil model accepted")
	}
}

// TestParseKVPlacement round-trips both names.
func TestParseKVPlacement(t *testing.T) {
	for _, p := range []KVPlacement{KVLocal, KVPooled} {
		got, err := ParseKVPlacement(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseKVPlacement(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseKVPlacement("remote"); err == nil {
		t.Fatalf("ParseKVPlacement accepted an unknown placement")
	}
}
