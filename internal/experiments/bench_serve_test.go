package experiments

import (
	"testing"

	"coarse/internal/runner"
	"coarse/internal/serve"
	"coarse/internal/topology"
)

// BenchmarkServeCell* time one mid-load serving cell end to end —
// trace generation, prefill/decode continuous batching, and (pooled)
// the per-step KV traffic over the CCI fabric — one benchmark per KV
// placement so bench-guard watches both the compute-bound and the
// fabric-bound serving hot paths. Like the scale pair, each iteration
// asserts the pinned completion time as a cheap guard against timing a
// run that silently diverged. These feed BENCH_core.json via
// `go run ./cmd/benchjson -set core`.

func BenchmarkServeCellLocal(b *testing.B)  { benchServeCell(b, serve.KVLocal) }
func BenchmarkServeCellPooled(b *testing.B) { benchServeCell(b, serve.KVPooled) }

func benchServeCell(b *testing.B, placement serve.KVPlacement) {
	spec := serveSpec(Config{}, topology.AWSV100(), evalModel("BERT"),
		serve.Poisson, serveMidRate, placement, false)
	spec.Key = "" // no result cache: each iteration must simulate
	var total string
	for i := 0; i < b.N; i++ {
		res := runner.RunServe(spec)
		if !res.OK() {
			b.Fatalf("serve cell failed: %s", res.Err)
		}
		got := res.Serve.TotalTime.String()
		if total == "" {
			total = got
		} else if got != total {
			b.Fatalf("completion time drifted: %s vs %s", got, total)
		}
	}
}
