package parallel

import (
	"reflect"
	"sync"
	"testing"
)

func testRouter(seed int64) Router {
	return Router{Seed: seed, Experts: 8, TopK: 2, Ranks: 4}
}

// TestRouterConservation: every routed token is accounted exactly once
// — row sums are tokens·TopK·bytesPerToken, and the matrix total (with
// the diagonal kept) is Ranks times that.
func TestRouterConservation(t *testing.T) {
	r := testRouter(1)
	const tokens, bpt = 64, 128
	m := r.Matrix(0, 1, 2, 3, tokens, bpt)
	if len(m) != r.Ranks {
		t.Fatalf("matrix has %d rows, want %d", len(m), r.Ranks)
	}
	wantRow := int64(tokens * r.TopK * bpt)
	for i, row := range m {
		var sum int64
		for _, v := range row {
			sum += v
		}
		if sum != wantRow {
			t.Errorf("row %d sums to %d, want %d", i, sum, wantRow)
		}
	}
	if got := MatrixSum(m); got != wantRow*int64(r.Ranks) {
		t.Errorf("MatrixSum = %d, want %d", got, wantRow*int64(r.Ranks))
	}
	if off := OffDiagonal(m); off <= 0 || off >= MatrixSum(m) {
		t.Errorf("OffDiagonal = %d outside (0, %d): routing sent everything or nothing off-rank",
			off, MatrixSum(m))
	}
}

// TestRouterGoroutineDeterminism: Matrix is a pure function — many
// goroutines computing the same coordinate under the same seed must
// agree bit-for-bit, and distinct seeds must diverge.
func TestRouterGoroutineDeterminism(t *testing.T) {
	r := testRouter(42)
	want := r.Matrix(3, 1, 4, 1, 128, 64)
	const goroutines = 16
	got := make([][][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = testRouter(42).Matrix(3, 1, 4, 1, 128, 64)
		}(g)
	}
	wg.Wait()
	for g, m := range got {
		if !reflect.DeepEqual(m, want) {
			t.Fatalf("goroutine %d produced a different matrix", g)
		}
	}
	if diverged := testRouter(43).Matrix(3, 1, 4, 1, 128, 64); reflect.DeepEqual(diverged, want) {
		t.Error("seed 43 produced the same matrix as seed 42")
	}
}

// TestRouterCoordinateSensitivity: each routing coordinate feeds the
// stream — varying any one of (it, mb, layer, group) rearranges the
// exchange.
func TestRouterCoordinateSensitivity(t *testing.T) {
	r := testRouter(7)
	base := r.Matrix(0, 0, 0, 0, 256, 1)
	variants := map[string][][]int64{
		"it":    r.Matrix(1, 0, 0, 0, 256, 1),
		"mb":    r.Matrix(0, 1, 0, 0, 256, 1),
		"layer": r.Matrix(0, 0, 1, 0, 256, 1),
		"group": r.Matrix(0, 0, 0, 1, 256, 1),
	}
	for name, m := range variants {
		if reflect.DeepEqual(m, base) {
			t.Errorf("varying %s left the matrix unchanged", name)
		}
	}
}

// TestRouterDegenerate: invalid shapes return the zero matrix instead
// of panicking, and TopK clamps into [1, Experts].
func TestRouterDegenerate(t *testing.T) {
	zeros := []Router{
		{Seed: 1, Experts: 0, TopK: 2, Ranks: 2},
		{Seed: 1, Experts: 4, TopK: 2, Ranks: 0},
	}
	for _, r := range zeros {
		if m := r.Matrix(0, 0, 0, 0, 16, 8); MatrixSum(m) != 0 {
			t.Errorf("%+v routed %d bytes, want zero matrix", r, MatrixSum(m))
		}
	}
	if m := testRouter(1).Matrix(0, 0, 0, 0, 0, 8); MatrixSum(m) != 0 {
		t.Error("zero tokens routed bytes")
	}
	// TopK above Experts clamps: rows sum to Experts·bpt.
	over := Router{Seed: 1, Experts: 2, TopK: 5, Ranks: 2}
	m := over.Matrix(0, 0, 0, 0, 4, 10)
	for i, row := range m {
		if row[0]+row[1] != 4*2*10 {
			t.Errorf("clamped row %d = %v", i, row)
		}
	}
	// TopK zero defaults to 1.
	one := Router{Seed: 1, Experts: 4, TopK: 0, Ranks: 2}
	m = one.Matrix(0, 0, 0, 0, 8, 2)
	if got := MatrixSum(m); got != 8*1*2*2 {
		t.Errorf("TopK=0 matrix total = %d, want one expert per token", got)
	}
}

func TestTranspose(t *testing.T) {
	m := [][]int64{{1, 2}, {3, 4}}
	want := [][]int64{{1, 3}, {2, 4}}
	if got := Transpose(m); !reflect.DeepEqual(got, want) {
		t.Errorf("Transpose = %v", got)
	}
	r := testRouter(9)
	a := r.Matrix(0, 0, 0, 0, 32, 4)
	if got := Transpose(Transpose(a)); !reflect.DeepEqual(got, a) {
		t.Error("double transpose is not identity")
	}
	if MatrixSum(Transpose(a)) != MatrixSum(a) || OffDiagonal(Transpose(a)) != OffDiagonal(a) {
		t.Error("transpose changed conserved totals")
	}
}
