package memdev

import (
	"fmt"

	"coarse/internal/sim"
)

// AllReduceDetailed runs the same group synchronization as
// AllReduceBytes but at the chunk granularity of Figure 11c: each sync
// core streams BufEntries-sized chunks from DRAM into LocalBuf, runs
// the ring iterations per chunk, and writes results back — a three
// stage pipeline (load → ring → writeback) in which chunk k+1's DRAM
// load overlaps chunk k's ring rounds.
//
// The abstract model charges the same aggregate costs without chunking;
// TestDetailedMatchesAbstract pins the two within a small factor, so the
// abstract path used in training-scale runs stays honest. The detailed
// path exists for fidelity studies and costs O(chunks) events — use it
// on tens of megabytes, not BERT.
func (g *SyncGroup) AllReduceDetailed(bytes int64, onDone func()) {
	if bytes < 0 {
		panic(fmt.Sprintf("memdev: detailed allreduce of %d bytes", bytes))
	}
	g.queue = append(g.queue, func(finish func()) {
		g.runDetailed(bytes, func() {
			finish()
			if onDone != nil {
				onDone()
			}
		})
	})
	g.pump()
}

func (g *SyncGroup) runDetailed(bytes int64, done func()) {
	eng := g.pool.Topo.Eng
	chunkBytes := int64(g.pool.Devices[0].Config.BufEntries) * 4
	chunks := int(bytes / chunkBytes)
	if int64(chunks)*chunkBytes < bytes {
		chunks++
	}
	if chunks == 0 {
		eng.Schedule(0, done)
		return
	}
	dram := g.pool.Devices[0]

	// Pipeline state: the load stage and the writeback stage are DRAM
	// ports (serial), the ring stage is the group's cores (serial).
	// Chunk k+1's load overlaps chunk k's ring rounds.
	var loadFree, wbFree sim.Time
	remaining := chunks

	pendingRing := []int64{}
	ringBusy := false
	var pumpRing func()
	pumpRing = func() {
		if ringBusy || len(pendingRing) == 0 {
			return
		}
		ringBusy = true
		size := pendingRing[0]
		pendingRing = pendingRing[1:]
		g.ring.AllReduceBytes(size, g.Reverse, func() {
			// Writeback through the serial DRAM port.
			start := eng.Now()
			if wbFree > start {
				start = wbFree
			}
			wbFree = start + dram.DRAMTime(size)
			eng.At(wbFree, func() {
				remaining--
				if remaining == 0 {
					done()
				}
			})
			ringBusy = false
			pumpRing()
		})
	}

	var load func(k int)
	load = func(k int) {
		if k == chunks {
			return
		}
		size := chunkBytes
		if int64(k+1)*chunkBytes > bytes {
			size = bytes - int64(k)*chunkBytes
		}
		start := eng.Now()
		if loadFree > start {
			start = loadFree
		}
		loadFree = start + dram.DRAMTime(size)
		eng.At(loadFree, func() {
			pendingRing = append(pendingRing, size)
			pumpRing()
			load(k + 1)
		})
	}
	load(0)
}
