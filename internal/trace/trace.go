// Package trace records simulation timelines and writes them in the
// Chrome trace-event format (chrome://tracing, Perfetto). The trainer
// emits per-worker forward/backward/stall spans and strategies can add
// synchronization spans, so a run's overlap behaviour — what Figure 9
// and Figure 17 aggregate — can be inspected span by span.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"coarse/internal/sim"
)

// Event is one trace span or instant.
type Event struct {
	Name  string   // span label ("fwd enc03", "sync shard 4/2")
	Cat   string   // category ("compute", "comm", "stall", "sync")
	Track string   // timeline row ("worker 0", "proxy 2")
	Start sim.Time // span begin
	Dur   sim.Time // span length; zero means an instant event
}

// Recorder accumulates events. A nil *Recorder is valid and records
// nothing, so call sites don't need enablement checks.
type Recorder struct {
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Span records a duration event. No-op on a nil recorder.
func (r *Recorder) Span(track, cat, name string, start, end sim.Time) {
	if r == nil {
		return
	}
	if end < start {
		panic(fmt.Sprintf("trace: span %q ends (%v) before it starts (%v)", name, end, start))
	}
	r.events = append(r.events, Event{Name: name, Cat: cat, Track: track, Start: start, Dur: end - start})
}

// Instant records a point event. No-op on a nil recorder.
func (r *Recorder) Instant(track, cat, name string, at sim.Time) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Name: name, Cat: cat, Track: track, Start: at})
}

// Len returns the number of recorded events; zero for a nil recorder.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the recorded events in (start, track, name) order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := append([]Event(nil), r.events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TotalByCat sums span durations per category — a quick aggregate the
// tests use to cross-check the trainer's own accounting.
func (r *Recorder) TotalByCat(track string) map[string]sim.Time {
	totals := make(map[string]sim.Time)
	if r == nil {
		return totals
	}
	for _, e := range r.events {
		if track == "" || e.Track == track {
			totals[e.Cat] += e.Dur
		}
	}
	return totals
}

// chromeEvent is the trace-event JSON schema (ph "X" = complete event,
// "i" = instant; timestamps in microseconds).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChrome serializes the trace as a Chrome trace-event JSON array.
func (r *Recorder) WriteChrome(w io.Writer) error {
	events := r.Events()
	// Stable track -> tid mapping, in first-appearance order.
	tids := map[string]int{}
	var order []string
	for _, e := range events {
		if _, ok := tids[e.Track]; !ok {
			tids[e.Track] = len(tids)
			order = append(order, e.Track)
		}
	}
	var out []any
	for _, track := range order {
		out = append(out, chromeMeta{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[track],
			Args: map[string]any{"name": track},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, Pid: 1, Tid: tids[e.Track],
			Ts: float64(e.Start) / 1e3, // ns -> us
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1e3
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
