// Package paramserver implements the two centralized baselines the
// paper compares against.
//
// CentralPS is the conventional parameter server on the host CPU
// (Section II-B): every worker pushes gradients up through the host
// bridge and pulls parameters back down, so the CPU's serial-bus lanes
// — shared by all workers — are the structural bottleneck.
//
// DENSE is the paper's naive disaggregated design (Figure 5): the
// parameter server runs on a single CCI memory device, workers keep
// CCI-coherent parameter caches, and all traffic rides the CCI
// load/store path whose line-rate bandwidth the prototype measured at
// around 1 GB/s — further discounted by coherence traffic as more
// workers share the parameter region (Section III-D). DENSE is the
// normalization baseline of Figures 16 and 17.
package paramserver

import (
	"fmt"

	"coarse/internal/fabric"
	"coarse/internal/model"
	"coarse/internal/sim"
	"coarse/internal/telemetry"
	"coarse/internal/topology"
	"coarse/internal/train"
)

// CentralPS is the host-CPU parameter server baseline.
type CentralPS struct {
	// UpdateBytesPerSec is the server-side aggregation rate (CPU memory
	// bound).
	UpdateBytesPerSec float64

	// Shards selects the server placement. 0 keeps the historical
	// behavior: every node's own host CPU aggregates its workers'
	// gradients (the single-node reading of Section II-B, where
	// "central" and "local" coincide). Shards >= 1 places that many
	// true central servers on evenly spread nodes' host CPUs, with
	// layer l served by server l mod Shards — on a multi-node machine
	// every worker's push now crosses the network toward the server,
	// which is exactly the incast bottleneck the paper's Section IV
	// scaling argument is about. Each server aggregates serially at
	// UpdateBytesPerSec.
	Shards int

	ctx *train.Ctx
	// arrived counts pushes per (iteration, layer, reduction tree); the
	// tree id is always 0 on the trivial data-parallel layout, where the
	// single tree holds every worker.
	arrived map[[3]int]int
	servers []*psServer // nil in the Shards == 0 legacy mode

	pushes, pulls *telemetry.Counter
}

// psServer is one true-central aggregation point: a host CPU plus the
// virtual time its serial aggregation pipeline is busy until.
type psServer struct {
	cpu  *topology.Device
	free sim.Time
}

// NewCentralPS returns the baseline with a memory-bound 30 GB/s
// aggregation rate.
func NewCentralPS() *CentralPS {
	return &CentralPS{UpdateBytesPerSec: 30e9}
}

// Name implements train.Strategy.
func (s *CentralPS) Name() string { return "CentralPS" }

// WorkerStateBytes implements train.Strategy: workers keep parameters
// and gradients; optimizer state lives on the server.
func (s *CentralPS) WorkerStateBytes(m *model.Model) int64 { return 2 * m.ParamBytes() }

// Setup implements train.Strategy.
func (s *CentralPS) Setup(ctx *train.Ctx) error {
	s.ctx = ctx
	s.arrived = make(map[[3]int]int)
	s.pushes = ctx.Cfg.Telemetry.Counter("ps/pushes", "ops")
	s.pulls = ctx.Cfg.Telemetry.Counter("ps/pulls", "ops")
	if s.Shards >= 1 {
		nodes := len(ctx.Machine.CPUs)
		for si := 0; si < s.Shards; si++ {
			s.servers = append(s.servers, &psServer{cpu: ctx.Machine.CPUs[si*nodes/s.Shards]})
		}
		reg := ctx.Cfg.Telemetry
		if reg != nil {
			for si, srv := range s.servers {
				srv := srv
				reg.GaugeFunc(fmt.Sprintf("ps/server%d/backlog_ns", si), "ns", func() float64 {
					backlog := srv.free - ctx.Eng.Now()
					if backlog < 0 {
						return 0
					}
					return float64(backlog)
				})
			}
		}
	}
	return nil
}

// GradientReady implements train.Strategy: push to the CPU; once every
// member of the layer's reduction tree arrives the server updates and
// pushes back. On the trivial layout the single tree is every worker
// and the volume is the full tensor — the historical behavior exactly.
func (s *CentralPS) GradientReady(it, w, layer int) {
	ctx := s.ctx
	size := ctx.LayerSyncBytes(layer)
	gid := ctx.LayerGroupID(w, layer)
	members := ctx.GroupMembers(gid)
	cpu := ctx.Machine.CPUs[ctx.Workers[w].Dev.Node]
	var srv *psServer
	if len(s.servers) > 0 {
		srv = s.servers[layer%len(s.servers)]
		cpu = srv.cpu
	}
	s.pushes.Inc()
	ctx.CCI.DMACopy(ctx.Workers[w].Dev, cpu, size, func() {
		key := [3]int{it, layer, gid}
		s.arrived[key]++
		if s.arrived[key] < len(members) {
			return
		}
		delete(s.arrived, key)
		update := sim.Seconds(float64(size) / s.UpdateBytesPerSec)
		apply := func() {
			if ctx.Cfg.Numeric {
				averageGrads(ctx, layer)
			}
			// The push-back fan is emitted in one burst and may be
			// tagged: pulls sharing a source CPU, route, and size can
			// ride one aggregated flow (workers on distinct devices
			// route differently and simply stay separate).
			var tag fabric.AggTag
			for _, dst := range members {
				dst := dst
				dstCPU := cpu
				if srv == nil {
					dstCPU = ctx.Machine.CPUs[ctx.Workers[dst].Dev.Node]
				}
				s.pulls.Inc()
				ctx.CCI.DMACopyTagged(&tag, dstCPU, ctx.Workers[dst].Dev, size, func() {
					// A silenced worker cannot accept its pull; the
					// hand-off defers until it wakes. Other workers'
					// pulls proceed independently.
					ctx.RunAwake(func() { ctx.MarkReady(it, dst, layer) }, dst)
				})
			}
		}
		if srv == nil {
			ctx.Eng.Schedule(update, apply)
			return
		}
		// True-central mode: the server CPU aggregates serially — a
		// layer's update queues behind whatever the server is already
		// applying (the compute half of the incast bottleneck).
		start := ctx.Eng.Now()
		if srv.free > start {
			start = srv.free
		}
		srv.free = start + update
		ctx.Eng.At(srv.free, apply)
	})
}

// pipe is a FIFO serial resource with a fixed byte rate: the CCI
// load/store port of the DENSE device. All transfers through the port
// queue behind each other, each paying a fixed per-request service time
// (the on-device generalized processor handles every push/pull).
type pipe struct {
	ctx   *train.Ctx
	rate  float64
	perOp sim.Time
	free  sim.Time
}

// transfer enqueues one port transaction on behalf of a worker. The
// port is FIFO and coherent: a load/store makes no progress while its
// worker's cache agent is chaos-silenced, so service time pauses
// through the worker's silent windows, and every queued transaction
// behind it waits — the head-of-line blocking that makes a
// single-device synchronous design fragile under transient faults.
// Without chaos the service pause is an identity and the bytes are
// unchanged.
func (p *pipe) transfer(worker int, size int64, onDone func()) {
	now := p.ctx.Eng.Now()
	start := p.free
	if now > start {
		start = now
	}
	service := p.perOp + sim.Seconds(float64(size)/p.rate)
	finish := p.ctx.ChaosService(worker, start, service)
	p.free = finish
	p.ctx.Eng.At(finish, onDone)
}

// DENSE is the naive single-device CCI parameter server.
type DENSE struct {
	// ProcessorBytesPerSec is the on-device generalized processor's
	// aggregation rate; the paper's ARM cores are slow, which is what
	// motivated the sync cores (Section IV-A).
	ProcessorBytesPerSec float64
	// RequestOverhead is the per-push/pull service time on the
	// generalized processor; it dominates for models with many small
	// tensors (ResNet's BN parameters).
	RequestOverhead sim.Time

	// Shards gives the design k independent memory devices, each with
	// its own port pair and generalized processor, serving layer
	// l ≡ s (mod k). 0 or 1 is the paper's single-device DENSE; the
	// multi-device variant is the apples-to-apples baseline for
	// sharded COARSE (every worker still shares every port with every
	// other worker, so coherence overhead is unchanged — only the FIFO
	// fan-in per port drops).
	Shards int

	ctx *train.Ctx
	// arrived counts pushes per (iteration, layer, reduction tree), as
	// in CentralPS.
	arrived map[[3]int]int
	// Per-device CCI ports, one pair per shard (a single pair in the
	// paper's configuration). Coherence overhead scales with the number
	// of workers sharing the region.
	writePorts []*pipe
	readPorts  []*pipe

	pushes, pulls, pushBytes, pullBytes *telemetry.Counter
}

// NewDENSE returns the baseline with an ARM-class 2 GB/s aggregation
// rate and a 0.5 ms per-request service time.
func NewDENSE() *DENSE {
	return &DENSE{ProcessorBytesPerSec: 2e9, RequestOverhead: 500_000}
}

// Name implements train.Strategy.
func (s *DENSE) Name() string { return "DENSE" }

// WorkerStateBytes implements train.Strategy: the GPU keeps its CCI
// parameter cache and gradients; global parameters and optimizer state
// live on the memory device.
func (s *DENSE) WorkerStateBytes(m *model.Model) int64 { return 2 * m.ParamBytes() }

// Setup implements train.Strategy.
func (s *DENSE) Setup(ctx *train.Ctx) error {
	s.ctx = ctx
	s.arrived = make(map[[3]int]int)
	p := ctx.Cfg.CCIParams
	sharers := ctx.NumWorkers()
	k := s.Shards
	if k < 1 {
		k = 1
	}
	for si := 0; si < k; si++ {
		s.writePorts = append(s.writePorts,
			&pipe{ctx: ctx, perOp: s.RequestOverhead, rate: p.SharingPenalty(p.LoadStoreBandwidth(true), sharers)})
		s.readPorts = append(s.readPorts,
			&pipe{ctx: ctx, perOp: s.RequestOverhead, rate: p.SharingPenalty(p.LoadStoreBandwidth(false), sharers)})
	}
	reg := ctx.Cfg.Telemetry
	s.pushes = reg.Counter("dense/pushes", "ops")
	s.pulls = reg.Counter("dense/pulls", "ops")
	s.pushBytes = reg.Counter("dense/push_bytes", "B")
	s.pullBytes = reg.Counter("dense/pull_bytes", "B")
	if reg != nil {
		// Port backlog: virtual time until the FIFO port drains — the
		// queueing the shared load/store port builds up under Figure 5's
		// all-workers-one-device contention. Single-device series keep
		// the historical names; the sharded variant prefixes each
		// device.
		for si := 0; si < k; si++ {
			wName, rName := "dense/write_port/backlog_ns", "dense/read_port/backlog_ns"
			if k > 1 {
				wName = fmt.Sprintf("dense/dev%d/write_port/backlog_ns", si)
				rName = fmt.Sprintf("dense/dev%d/read_port/backlog_ns", si)
			}
			for _, pd := range []struct {
				name string
				p    *pipe
			}{{wName, s.writePorts[si]}, {rName, s.readPorts[si]}} {
				pipe := pd.p
				reg.GaugeFunc(pd.name, "ns", func() float64 {
					backlog := pipe.free - ctx.Eng.Now()
					if backlog < 0 {
						return 0
					}
					return float64(backlog)
				})
			}
		}
	}
	return nil
}

// PortRate exposes a port's coherence-discounted byte rate; tests
// validate it against the coherence protocol's measured overhead.
func (s *DENSE) PortRate(write bool) float64 {
	if write {
		return s.writePorts[0].rate
	}
	return s.readPorts[0].rate
}

// GradientReady implements train.Strategy.
func (s *DENSE) GradientReady(it, w, layer int) {
	ctx := s.ctx
	size := ctx.LayerSyncBytes(layer)
	gid := ctx.LayerGroupID(w, layer)
	members := ctx.GroupMembers(gid)
	writePort := s.writePorts[layer%len(s.writePorts)]
	readPort := s.readPorts[layer%len(s.readPorts)]
	// Push: write into the CCI parameter region through the layer's
	// shared port.
	s.pushes.Inc()
	s.pushBytes.Add(float64(size))
	writePort.transfer(w, size, func() {
		key := [3]int{it, layer, gid}
		s.arrived[key]++
		if s.arrived[key] < len(members) {
			return
		}
		delete(s.arrived, key)
		update := sim.Seconds(float64(size) / s.ProcessorBytesPerSec)
		ctx.Eng.Schedule(update, func() {
			if ctx.Cfg.Numeric {
				averageGrads(ctx, layer)
			}
			// Pull: each member reads the updated parameters back
			// through its coherent cache and the same shared port.
			for _, dst := range members {
				dst := dst
				s.pulls.Inc()
				s.pullBytes.Add(float64(size))
				readPort.transfer(dst, size, func() {
					ctx.MarkReady(it, dst, layer)
				})
			}
		})
	})
}

// averageGrads replaces every worker's gradient for a layer with the
// cross-worker mean — the server-side aggregation's numeric effect.
func averageGrads(ctx *train.Ctx, layer int) {
	n := ctx.NumWorkers()
	inv := 1 / float32(n)
	sum := ctx.Grads[0][layer].Data
	for w := 1; w < n; w++ {
		for i, v := range ctx.Grads[w][layer].Data {
			sum[i] += v
		}
	}
	for i := range sum {
		sum[i] *= inv
	}
	for w := 1; w < n; w++ {
		copy(ctx.Grads[w][layer].Data, sum)
	}
}
